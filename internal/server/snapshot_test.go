package server

import (
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestQueryIngestHammer races ingest POSTs against every read endpoint
// and checks each /sample response is internally consistent: the reported
// probabilities match the response's own stream position t exactly, so a
// reader can never observe a snapshot assembled from two reservoir
// states. Run with -race.
func TestQueryIngestHammer(t *testing.T) {
	const lambda = 0.01
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "biased", Lambda: lambda})

	// Seed enough points that every query type has sample mass.
	seed := make([]IngestPoint, 100)
	for i := range seed {
		label := i % 3
		seed[i] = IngestPoint{Values: []float64{float64(i), float64(i % 10), 1}, Label: &label}
	}
	ingest(t, ts.URL, "s", seed)

	const writers, batches, batchLen = 4, 40, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				pts := make([]IngestPoint, batchLen)
				for j := range pts {
					label := (w + j) % 3
					pts[j] = IngestPoint{Values: []float64{float64(i), float64(j), 2}, Label: &label}
				}
				ingest(t, ts.URL, "s", pts)
			}
		}(w)
	}

	queries := []string{
		"/streams/s/query?type=count&h=50",
		"/streams/s/query?type=average&h=50",
		"/streams/s/query?type=classdist&h=50",
		"/streams/s/query?type=groupavg&h=50",
		"/streams/s/query?type=selectivity&h=50&dims=0&lo=0&hi=100",
		"/streams/s/query?type=quantile&h=50&dim=0&q=0.5",
	}
	stop := make(chan struct{})
	var readErr atomic.Value
	fail := func(format string, args ...any) {
		readErr.Store(fmt.Sprintf(format, args...))
	}
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := queries[i%len(queries)]
				resp, body := do(t, http.MethodGet, ts.URL+url, nil)
				if resp.StatusCode != http.StatusOK {
					fail("query %s: status %d body %v", url, resp.StatusCode, body)
					return
				}

				resp, body = do(t, http.MethodGet, ts.URL+"/streams/s/sample", nil)
				if resp.StatusCode != http.StatusOK {
					fail("sample: status %d", resp.StatusCode)
					return
				}
				tt := uint64(body["t"].(float64))
				for _, raw := range body["points"].([]any) {
					p := raw.(map[string]any)
					idx := uint64(p["index"].(float64))
					prob := p["prob"].(float64)
					if idx == 0 || idx > tt {
						fail("sample holds index %d newer than its own t %d", idx, tt)
						return
					}
					// The biased policy has p_in = 1, so prob must be
					// exactly e^{-λ(t-r)} for the response's own t.
					if want := math.Exp(-lambda * float64(tt-idx)); prob != want {
						fail("sample prob %v for index %d, want %v at t %d (torn snapshot)", prob, idx, want, tt)
						return
					}
				}

				if i%7 == 0 {
					if resp, _ := do(t, http.MethodGet, ts.URL+"/streams/s", nil); resp.StatusCode != http.StatusOK {
						fail("stats: status %d", resp.StatusCode)
						return
					}
					if resp, _ := do(t, http.MethodGet, ts.URL+"/streams/s/snapshot", nil); resp.StatusCode != http.StatusOK {
						fail("snapshot: status %d", resp.StatusCode)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()
	if msg := readErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	_, body := do(t, http.MethodGet, ts.URL+"/streams/s", nil)
	if got, want := body["processed"].(float64), float64(100+writers*batches*batchLen); got != want {
		t.Fatalf("processed = %v, want %v", got, want)
	}
}

func TestSnapshotCacheMetricsExported(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 10})
	ingest(t, ts.URL, "s", []IngestPoint{{Values: []float64{1}}, {Values: []float64{2}}})

	// First read misses and rebuilds; the rest are cache hits.
	for i := 0; i < 3; i++ {
		if resp, _ := do(t, http.MethodGet, ts.URL+"/streams/s/sample", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("sample: status %d", resp.StatusCode)
		}
	}
	resp, body := do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	text := string(body["raw"].([]byte))
	for _, want := range []string{
		`biasedres_snapshot_cache_hits_total{stream="s"} 2`,
		`biasedres_snapshot_cache_misses_total{stream="s"} 1`,
		`biasedres_snapshot_cache_rebuilds_total{stream="s"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}
