package server

import (
	"biasedres/internal/core"
	"biasedres/internal/stream"
	"biasedres/internal/wire"
)

// IngestFrame implements wire.Sink: the binary ingest path. It is the
// wire twin of handleIngest — same validation, same backpressure
// contract, same sampler path — minus HTTP parsing and JSON decode. The
// frame's slices are owned by the caller and reused, so the batch handed
// to the sampler is built from fresh memory: one []stream.Point and one
// contiguous float64 backing per frame, never one allocation per point.
//
// Reply mapping mirrors the HTTP statuses: unknown stream, bad
// dimensionality, bad indices and a closed stream are StatusError
// (resending cannot succeed here); a full ingest queue is
// StatusBackpressure with the same 1s retry hint as the 429 path, and
// consumes nothing.
func (s *Server) IngestFrame(f *wire.Frame) wire.Reply {
	// Compiles to an allocation-free map probe; the frame's name bytes
	// never escape into a string unless a reply message needs them.
	s.mu.RLock()
	ms, ok := s.streams[string(f.Name)]
	s.mu.RUnlock()
	if !ok {
		return wire.Errorf("stream %q not found", f.Name)
	}

	ms.qmu.Lock()
	if ms.closed {
		ms.qmu.Unlock()
		return wire.Errorf("stream %q is shutting down", f.Name)
	}
	// The decoder already guarantees uniform dimensionality within a frame
	// (values are packed count×dim); only the stream's committed dimension
	// needs checking, and it commits on success exactly like HTTP ingest.
	dim := ms.dim
	if dim == 0 {
		dim = f.Dim
	} else if f.Dim != dim {
		ms.qmu.Unlock()
		return wire.Errorf("frame has dim %d, stream has %d", f.Dim, dim)
	}
	// Explicit arrival indices must extend the stream's order: strictly
	// increasing and past every index already assigned. Checked before
	// anything is consumed so a rejected frame leaves no trace.
	if f.Indices != nil {
		prev := ms.next
		for i, idx := range f.Indices {
			if idx <= prev {
				ms.qmu.Unlock()
				return wire.Errorf("index %d at point %d does not advance the stream (at %d)", idx, i, prev)
			}
			prev = idx
		}
	}

	batch := buildWireBatch(f)
	next := ms.next
	if f.Indices != nil {
		next = f.Indices[len(f.Indices)-1]
	} else {
		// Server-side sequencing: indices are provisional until the batch
		// is accepted; ms.next only commits on success, so a rejected
		// frame consumes nothing.
		next = sequenceWireBatch(batch, ms.next)
	}

	_, timed := ms.sampler.(*core.TimeDecayReservoir)
	if ms.shard != nil && !timed {
		// Async lane, mirroring handleIngestAsync: hand the batch to the
		// stream's worker under qmu only. A full queue is backpressure —
		// NACK with the HTTP Retry-After hint, nothing consumed.
		select {
		case ms.shard.ch <- batch:
			ms.next = next
			ms.dim = dim
			ms.pending.Add(int64(len(batch)))
		default:
			ms.qmu.Unlock()
			s.rejected.With(string(f.Name)).Inc()
			return wire.Nack(1000)
		}
		pending := ms.pending.Load()
		ms.qmu.Unlock()
		s.countWireBatch(f)
		return wire.Ack(pending)
	}

	// Synchronous apply, mirroring handleIngestSync's batch branch. Wire
	// frames carry no timestamps, so time-decay streams advance their
	// clock one unit per point (the TS-less HTTP semantics) — AddBatch
	// degrades to in-order Adds for them.
	ms.mu.Lock()
	core.AddBatch(ms.sampler, batch)
	if s.durable != nil {
		s.appendJournal(string(f.Name), journalOps(batch))
	}
	ms.next = next
	ms.dim = dim
	ms.snap.Invalidate()
	ms.mu.Unlock()
	ms.qmu.Unlock()
	s.observeModel(ms, batch)
	s.countWireBatch(f)
	return wire.Ack(0)
}

// buildWireBatch converts a decoded frame into the batch handed to the
// sampler. Samplers retain their points, so the batch cannot alias the
// frame's reusable slices: the points share one fresh contiguous values
// backing, two allocations total regardless of point count. Called with
// ms.qmu held (it reads nothing of ms; the caller sequences indices).
func buildWireBatch(f *wire.Frame) []stream.Point {
	backing := make([]float64, len(f.Values))
	copy(backing, f.Values)
	batch := make([]stream.Point, f.Count)
	for i := range batch {
		p := &batch[i]
		p.Values = backing[i*f.Dim : (i+1)*f.Dim : (i+1)*f.Dim]
		if f.Indices != nil {
			p.Index = f.Indices[i]
		}
		p.Label = -1
		if f.Labels != nil {
			p.Label = int(f.Labels[i])
		}
		p.Weight = 1
		if f.Weights != nil && f.Weights[i] != 0 {
			p.Weight = f.Weights[i]
		}
	}
	return batch
}

// sequenceWireBatch assigns server-side arrival indices when the frame
// carried none. Split from buildWireBatch because ms.next must only
// advance on success; callers invoke it just before committing.
func sequenceWireBatch(batch []stream.Point, next uint64) uint64 {
	for i := range batch {
		next++
		batch[i].Index = next
	}
	return next
}

// countWireBatch records the shared ingest metrics for an accepted frame.
func (s *Server) countWireBatch(f *wire.Frame) {
	s.ingest.With(string(f.Name)).Add(uint64(f.Count))
	s.batchSize.Observe(float64(f.Count))
}
