package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"biasedres/internal/client"
	"biasedres/internal/wire"
)

// The wire suite compares the two network ingest paths on equal terms:
// both run over real loopback TCP with persistent connections, the same
// synchronous server, the same stream configuration and the same
// 256-point batches — the only variable is the protocol (binary frames
// vs JSON-over-HTTP). cmd/benchingest -suite wire runs these and emits
// BENCH_wire.json; the acceptance bar is binary ≥ 5× JSON points/s.

const wireBenchBatch = 256

// benchWirePoints builds one client batch of n 2-dim points.
func benchWirePoints(n int) []client.Point {
	pts := make([]client.Point, n)
	for i := range pts {
		pts[i] = client.Point{Values: []float64{float64(i), float64(n - i)}}
	}
	return pts
}

// BenchmarkWireTCP measures the binary path end to end: WireConn encode →
// loopback TCP → listener decode → IngestFrame → sampler, one ACKed
// frame of 256 points per iteration.
func BenchmarkWireTCP(b *testing.B) {
	srv := New(1)
	benchCreateStream(b, srv, "s")
	wl, addr := startWireListener(b, srv)
	defer wl.Close()
	wc, err := client.DialWire(addr, client.WireConnConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer wc.Close()
	pts := benchWirePoints(wireBenchBatch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wc.Push("s", pts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*wireBenchBatch/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkWireHTTPJSON is the JSON baseline over the same loopback TCP:
// a keep-alive http.Client POSTing the identical batch to the identical
// server. (The HTTP-named benchmarks in bench_ingest_test.go skip the
// network with httptest recorders; this one pays it, so the two wire-
// suite numbers are directly comparable.)
func BenchmarkWireHTTPJSON(b *testing.B) {
	srv := New(1)
	benchCreateStream(b, srv, "s")
	ts := httptest.NewServer(srv)
	defer ts.Close()
	blob := benchIngestBody(b, wireBenchBatch)
	url := ts.URL + "/streams/s/points"
	hc := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := hc.Post(url, "application/json", bytes.NewReader(blob))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	b.ReportMetric(float64(b.N)*wireBenchBatch/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkWireIngestFrame isolates the server-side frame handoff —
// decode already done, measuring IngestFrame's validate + batch build +
// sampler apply. Allocations here are per-frame (the point slice and its
// contiguous values backing), never per-point.
func BenchmarkWireIngestFrame(b *testing.B) {
	srv := New(1)
	benchCreateStream(b, srv, "s")
	f := &wire.Frame{Name: []byte("s"), Dim: 2, Count: wireBenchBatch}
	f.Values = make([]float64, wireBenchBatch*2)
	for i := range f.Values {
		f.Values[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := srv.IngestFrame(f); r.Status != wire.StatusOK {
			b.Fatalf("reply %+v", r)
		}
	}
	b.ReportMetric(float64(b.N)*wireBenchBatch/b.Elapsed().Seconds(), "points/s")
}
