package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"biasedres/internal/core"
	"biasedres/internal/obs"
	"biasedres/internal/query"
	"biasedres/internal/xrand"
)

// Multi-horizon tier support: streams created with "tiers" > 1 run a
// core.TieredReservoir — a ladder of reservoirs at geometrically-spaced λ
// fed by the same ingest fan-out — and this file holds everything the
// server layers on top of it: the create-request factory, horizon-aware
// snapshot routing, the GET /streams/{name}/range endpoint, the retention
// sweep, and the biasedres_tier_* metrics.

// defaultTierRatio is the λ spacing between consecutive tiers when the
// create request leaves tier_ratio unset. Consecutive horizons then differ
// by 8×, so four tiers span three orders of magnitude while the worst-case
// horizon overshoot (the variance cost of routing, docs/THEORY.md §10) stays
// bounded by one ratio step.
const defaultTierRatio = 8

// rangeMaxPointsDefault/Cap bound the GET /range bucket budget: the
// response allocates one bucket per point, so the cap keeps a hostile
// max_points from ballooning the response.
const (
	rangeMaxPointsDefault = 200
	rangeMaxPointsCap     = 10000
)

// tieredFactory resolves a create request with Tiers > 1: every tier runs
// the request's policy with the same per-tier capacity at its own λ_i.
func tieredFactory(req CreateRequest) (func(rng *xrand.Source) (persistentSampler, error), error) {
	ratio := req.TierRatio
	if ratio == 0 {
		ratio = defaultTierRatio
	}
	if !(ratio > 1) {
		return nil, fmt.Errorf("tier_ratio must be > 1, got %v", ratio)
	}
	var tierBuild func(i int, lambda float64, rng *xrand.Source) (core.PersistentSampler, error)
	switch req.Policy {
	case "variable":
		tierBuild = func(_ int, lambda float64, rng *xrand.Source) (core.PersistentSampler, error) {
			return core.NewVariableReservoir(lambda, req.Capacity, rng)
		}
	case "biased":
		if req.Capacity == 0 {
			// Uncapped Algorithm 2.1 tiers each take their maximum
			// requirement ⌊1/λ_i⌋ — memory grows by ratio× per tier; see
			// the tier-tuning runbook in docs/OPERATIONS.md.
			tierBuild = func(_ int, lambda float64, rng *xrand.Source) (core.PersistentSampler, error) {
				return core.NewBiasedReservoir(lambda, rng)
			}
		} else {
			tierBuild = func(_ int, lambda float64, rng *xrand.Source) (core.PersistentSampler, error) {
				return core.NewConstrainedReservoir(lambda, req.Capacity, rng)
			}
		}
	case "constrained":
		tierBuild = func(_ int, lambda float64, rng *xrand.Source) (core.PersistentSampler, error) {
			return core.NewConstrainedReservoir(lambda, req.Capacity, rng)
		}
	case "timedecay":
		tierBuild = func(_ int, lambda float64, rng *xrand.Source) (core.PersistentSampler, error) {
			return core.NewTimeDecayReservoir(lambda, req.Capacity, rng)
		}
	case "ttbs":
		// Tier 0 runs the steepest λ and therefore the tightest target
		// bound n ≤ 1/(1-e^{-λ}); deeper tiers only relax it.
		tierBuild = func(_ int, lambda float64, rng *xrand.Source) (core.PersistentSampler, error) {
			return core.NewTTBSReservoir(lambda, req.Capacity, rng)
		}
	case "rtbs":
		tierBuild = func(_ int, lambda float64, rng *xrand.Source) (core.PersistentSampler, error) {
			return core.NewRTBSReservoir(lambda, req.Capacity, rng)
		}
	default:
		// Uniform policies have no λ to space tiers over.
		return nil, fmt.Errorf("policy %q does not support tiers", req.Policy)
	}
	tiers, lambda := req.Tiers, req.Lambda
	return func(rng *xrand.Source) (persistentSampler, error) {
		return core.NewTieredReservoir(lambda, ratio, tiers, rng, tierBuild)
	}, nil
}

// tiered returns the stream's tier ladder, nil for single-reservoir
// streams. Callers must hold ms.qmu (the lock restore's sampler swap is
// serialized under).
func (ms *managedStream) tiered() *core.TieredReservoir {
	tr, _ := ms.sampler.(*core.TieredReservoir)
	return tr
}

// tierSnapshot serves tier i of ladder tr through the tier's own snapshot
// cache: lock-free on a hit, one sampler-lock hold to rebuild after a
// mutation — the same read-path contract as the stream-level cache.
func (ms *managedStream) tierSnapshot(tr *core.TieredReservoir, i int) *core.Snapshot {
	return tr.TierCache(i).Acquire(func() *core.Snapshot {
		ms.mu.Lock()
		defer ms.mu.Unlock()
		return core.BuildSnapshot(tr.Tier(i))
	})
}

// snapshotFor picks the snapshot that serves a query with horizon h: the
// best-covering tier of a tiered stream (tr from ms.tiered()), the
// stream's own snapshot otherwise. The second return is the tier index
// served, -1 for untiered streams.
func (ms *managedStream) snapshotFor(tr *core.TieredReservoir, h uint64) (*core.Snapshot, int) {
	if tr == nil {
		return ms.acquireSnapshot(), -1
	}
	i := tr.SelectTier(h)
	return ms.tierSnapshot(tr, i), i
}

// countTierQuery records a horizon-routed read. Untiered streams (tier -1)
// are not counted — the metric exists to show ladder utilization.
func (s *Server) countTierQuery(name string, tier int) {
	if tier < 0 {
		return
	}
	s.tierQueries.With(name, strconv.Itoa(tier)).Inc()
}

// tierInfo renders the ladder's per-tier state for GET /streams/{name}.
func (ms *managedStream) tierInfo(tr *core.TieredReservoir) []map[string]any {
	ms.mu.Lock()
	stats := make([]core.TierStats, tr.NumTiers())
	for i := range stats {
		stats[i] = tr.Stats(i)
	}
	ms.mu.Unlock()
	out := make([]map[string]any, len(stats))
	for i, st := range stats {
		out[i] = map[string]any{
			"index":     i,
			"lambda":    st.Lambda,
			"horizon":   st.Horizon,
			"size":      st.Len,
			"capacity":  st.Capacity,
			"compacted": st.Compacted,
			"drops":     st.Drops,
		}
	}
	return out
}

// RangeBucket is one grouping interval in a GET /range response.
type RangeBucket struct {
	Start    uint64    `json:"start"`
	End      uint64    `json:"end"`
	Count    float64   `json:"count"`
	Variance float64   `json:"variance"`
	Sums     []float64 `json:"sums,omitempty"`
	Mean     []float64 `json:"mean,omitempty"`
}

// handleRange is GET /streams/{name}/range?start=…&end=…&max_points=…:
// bucketed Horvitz–Thompson estimates over the arrival-index range
// [start, end). The bucket width is auto-selected from the span and the
// max_points budget (1-2-5 ladder, ≤ max_points buckets); tiered streams
// serve the request from the tier covering the oldest requested arrival.
// end defaults to t+1 (everything up to the newest point), start to 1.
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ms, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, "stream %q not found", name)
		return
	}
	q := r.URL.Query()
	start, err := parseUint(q.Get("start"), 1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad start: %v", err)
		return
	}
	if start == 0 {
		httpError(w, http.StatusBadRequest, "start must be >= 1 (arrival indices are 1-based)")
		return
	}
	maxPoints, err := parseUint(q.Get("max_points"), rangeMaxPointsDefault)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad max_points: %v", err)
		return
	}
	if maxPoints == 0 || maxPoints > rangeMaxPointsCap {
		httpError(w, http.StatusBadRequest, "max_points must be in [1, %d]", rangeMaxPointsCap)
		return
	}
	ms.qmu.Lock()
	streamDim := ms.dim
	tr := ms.tiered()
	ms.qmu.Unlock()
	dim, err := parseUint(q.Get("dim"), uint64(streamDim))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad dim: %v", err)
		return
	}

	// The stream position decides the end default and the routing horizon;
	// every tier shares it, so one brief sampler-lock read suffices.
	ms.mu.Lock()
	t := ms.sampler.Processed()
	ms.mu.Unlock()
	end, err := parseUint(q.Get("end"), t+1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad end: %v", err)
		return
	}
	if end <= start {
		httpError(w, http.StatusBadRequest, "empty range [%d, %d)", start, end)
		return
	}

	// Route to the tier whose horizon reaches back to the oldest requested
	// arrival: age of `start` plus one so the covering test is inclusive.
	var h uint64 = 1
	if start <= t {
		h = t - start + 1
	}
	snap, tier := ms.snapshotFor(tr, h)
	s.countTierQuery(name, tier)

	step := query.GranularityFor(end-start, int(maxPoints))
	buckets, err := query.AccumulateBuckets(snap, start, end, step, int(dim))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]RangeBucket, len(buckets))
	for i := range buckets {
		b := &buckets[i]
		rb := RangeBucket{Start: b.Start, End: b.End, Count: b.Count, Variance: b.Var, Sums: b.Sums}
		if len(b.Sums) > 0 && b.Count > 0 {
			rb.Mean = make([]float64, len(b.Sums))
			for d := range b.Sums {
				rb.Mean[d] = b.Sums[d] / b.Count
			}
		}
		out[i] = rb
	}
	resp := map[string]any{
		"t":           snap.T,
		"start":       start,
		"end":         end,
		"granularity": step,
		"buckets":     out,
	}
	if tier >= 0 {
		resp["tier"] = map[string]any{
			"index":   tier,
			"lambda":  tr.TierLambda(tier),
			"horizon": tr.TierHorizon(tier),
		}
	}
	writeJSON(w, resp)
}

// WithRetention enables the background retention sweep: every interval,
// residents whose inclusion probability has decayed below floor are
// compacted out of every stream that supports it (core.Compactor — the
// biased, variable, timedecay policies and tier ladders over them). A tier
// whose residents have all decayed is dropped to empty and counted in
// biasedres_tier_drops_total. Compacted streams are immediately
// re-checkpointed when durability is on, so recovery restores the
// compacted ladder, not a pre-compaction ghost. floor must be in (0, 1);
// interval defaults to 30s.
func WithRetention(floor float64, interval time.Duration) Option {
	return func(s *Server) {
		if !(floor > 0) || floor >= 1 {
			return
		}
		if interval <= 0 {
			interval = 30 * time.Second
		}
		s.retFloor = floor
		s.retInterval = interval
	}
}

// runRetention is the sweep loop started by New when WithRetention is
// configured.
func (s *Server) runRetention() {
	defer s.retWG.Done()
	tick := time.NewTicker(s.retInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.retStop:
			return
		case <-tick.C:
			s.sweepRetention()
		}
	}
}

// sweepRetention compacts every stream once. Exported behaviour lives in
// the metrics: removed points count into
// biasedres_tier_retention_removed_points_total, and per-tier
// compacted/drop totals surface through collectTiers.
func (s *Server) sweepRetention() {
	s.retSweeps.Add(1)
	s.mu.RLock()
	type pair struct {
		name string
		ms   *managedStream
	}
	streams := make([]pair, 0, len(s.streams))
	for name, ms := range s.streams {
		streams = append(streams, pair{name, ms})
	}
	s.mu.RUnlock()
	for _, p := range streams {
		p.ms.mu.Lock()
		c, ok := p.ms.sampler.(core.Compactor)
		removed := 0
		if ok {
			removed = c.CompactBelow(s.retFloor)
		}
		if removed > 0 {
			p.ms.snap.Invalidate()
		}
		p.ms.mu.Unlock()
		if removed == 0 {
			continue
		}
		s.retRemoved.With(p.name).Add(uint64(removed))
		if s.log != nil {
			s.log.Info("retention sweep compacted stream",
				"stream", p.name, "removed", removed, "floor", s.retFloor)
		}
		if s.durable != nil {
			// Persist the compacted state right away: recovery must
			// restore the post-compaction ladder byte-identically rather
			// than resurrect dropped residents from an older checkpoint.
			s.checkpointStream(p.name, p.ms, true)
		}
	}
}

// RetentionSweeps returns how many retention sweeps have run (0 when
// retention is disabled); tests and the readiness of tuning runbooks use
// it.
func (s *Server) RetentionSweeps() uint64 { return s.retSweeps.Load() }

// collectTiers exports per-tier gauges for every tiered stream plus the
// sweep counter when retention is on.
func (s *Server) collectTiers() []obs.Family {
	s.mu.RLock()
	names := make([]string, 0, len(s.streams))
	for name := range s.streams {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)

	tierLabel := func(name string, i int) []obs.Label {
		return []obs.Label{{Key: "stream", Value: name}, {Key: "tier", Value: strconv.Itoa(i)}}
	}
	size := obs.Family{Name: "biasedres_tier_reservoir_size", Type: "gauge",
		Help: "Points currently resident in the tier's reservoir."}
	capacity := obs.Family{Name: "biasedres_tier_reservoir_capacity", Type: "gauge",
		Help: "Tier reservoir slot budget."}
	lambda := obs.Family{Name: "biasedres_tier_lambda", Type: "gauge",
		Help: "Tier bias rate λ_i = λ/ratio^i."}
	horizon := obs.Family{Name: "biasedres_tier_horizon_points", Type: "gauge",
		Help: "Tier effective horizon 1/λ_i in arrivals."}
	compacted := obs.Family{Name: "biasedres_tier_compacted_points_total", Type: "counter",
		Help: "Residents removed from the tier by retention compaction."}
	drops := obs.Family{Name: "biasedres_tier_drops_total", Type: "counter",
		Help: "Retention sweeps that emptied the tier (its data had fully decayed)."}

	for _, name := range names {
		ms, ok := s.lookup(name)
		if !ok {
			continue
		}
		ms.qmu.Lock()
		tr := ms.tiered()
		ms.qmu.Unlock()
		if tr == nil {
			continue
		}
		ms.mu.Lock()
		stats := make([]core.TierStats, tr.NumTiers())
		for i := range stats {
			stats[i] = tr.Stats(i)
		}
		ms.mu.Unlock()
		for i, st := range stats {
			l := tierLabel(name, i)
			size.Samples = append(size.Samples, obs.Sample{Labels: l, Value: float64(st.Len)})
			capacity.Samples = append(capacity.Samples, obs.Sample{Labels: l, Value: float64(st.Capacity)})
			lambda.Samples = append(lambda.Samples, obs.Sample{Labels: l, Value: st.Lambda})
			horizon.Samples = append(horizon.Samples, obs.Sample{Labels: l, Value: st.Horizon})
			compacted.Samples = append(compacted.Samples, obs.Sample{Labels: l, Value: float64(st.Compacted)})
			drops.Samples = append(drops.Samples, obs.Sample{Labels: l, Value: float64(st.Drops)})
		}
	}

	var out []obs.Family
	for _, fam := range []obs.Family{size, capacity, lambda, horizon, compacted, drops} {
		if len(fam.Samples) > 0 {
			out = append(out, fam)
		}
	}
	if s.retFloor > 0 {
		out = append(out, obs.Family{Name: "biasedres_tier_retention_sweeps_total", Type: "counter",
			Help:    "Retention sweeps run over all streams.",
			Samples: []obs.Sample{{Value: float64(s.retSweeps.Load())}}})
	}
	return out
}
