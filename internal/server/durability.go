package server

import (
	"fmt"
	"time"

	"biasedres/internal/core"
	"biasedres/internal/durable"
	"biasedres/internal/stream"
)

// Durability wiring: with WithDurability enabled, every stream's sampler
// state survives process death. The moving parts:
//
//   - Stream creation writes checkpoint sequence 1 (the empty sampler and
//     its configuration) before the 201 is acknowledged, so a stream that
//     existed exists after a crash.
//   - Every applied ingest batch is framed onto the stream's append-only
//     journal (ops carry arrival indices, and explicit timestamps for
//     time-decay streams). Appends hit the OS immediately; fsyncs are
//     coalesced on JournalSyncInterval, bounding post-kill loss to that
//     window.
//   - A background checkpointer wakes on CheckpointInterval, skips
//     streams whose sampler mutation counter (core.VersionedSampler)
//     advanced fewer than CheckpointMinOps times, and for the rest cuts
//     the journal and marshals the sampler under the sampler lock, then
//     writes the checkpoint file outside every lock.
//   - Startup recovery (New) loads each stream's newest verifying
//     checkpoint, replays its journal tail, rebaselines with a fresh
//     checkpoint, and serves. Corrupt files are quarantined by the store,
//     never fatal.
//   - Close drains the ingest shards, takes a final checkpoint of every
//     stream, and closes the journals.

// DurabilityConfig tunes the durability layer. Zero values pick defaults.
type DurabilityConfig struct {
	// CheckpointInterval is the background checkpointer's wake period
	// (default 10s).
	CheckpointInterval time.Duration
	// CheckpointMinOps is the minimum number of sampler mutations since a
	// stream's last checkpoint for the checkpointer to write a new one
	// (default 1 — any change; quiescent streams are always skipped).
	CheckpointMinOps uint64
	// JournalSyncInterval is the journal fsync coalescing window (default
	// 100ms). After a hard kill, at most this window of acknowledged
	// points can be lost.
	JournalSyncInterval time.Duration
}

func (cfg DurabilityConfig) withDefaults() DurabilityConfig {
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 10 * time.Second
	}
	if cfg.CheckpointMinOps == 0 {
		cfg.CheckpointMinOps = 1
	}
	if cfg.JournalSyncInterval <= 0 {
		cfg.JournalSyncInterval = 100 * time.Millisecond
	}
	return cfg
}

// WithDurability persists every stream to store: recovery runs during
// New, and the server starts a checkpointer goroutine plus a journal
// fsync loop. Servers with durability enabled must be Closed.
func WithDurability(store *durable.Store, cfg DurabilityConfig) Option {
	return func(s *Server) {
		s.durable = store
		s.dcfg = cfg.withDefaults()
	}
}

// durableMeta renders a stream's configuration for its checkpoints.
func durableMeta(name string, req CreateRequest) durable.StreamMeta {
	return durable.StreamMeta{
		Name:      name,
		Policy:    req.Policy,
		Lambda:    req.Lambda,
		Capacity:  req.Capacity,
		Window:    req.Window,
		Tiers:     req.Tiers,
		TierRatio: req.TierRatio,
	}
}

// createRequestOf inverts durableMeta for recovery.
func createRequestOf(meta durable.StreamMeta) CreateRequest {
	return CreateRequest{
		Policy:    meta.Policy,
		Lambda:    meta.Lambda,
		Capacity:  meta.Capacity,
		Window:    meta.Window,
		Tiers:     meta.Tiers,
		TierRatio: meta.TierRatio,
	}
}

// journalOps converts an applied batch into journal ops.
func journalOps(batch []stream.Point) []durable.Op {
	ops := make([]durable.Op, len(batch))
	for i, p := range batch {
		ops[i] = durable.Op{P: p}
	}
	return ops
}

// appendJournal frames one applied batch onto the stream's journal. Called
// on the apply paths (sync handler, shard worker) while ms.mu is held, so
// journal order matches apply order. Failures degrade durability, not
// availability: they are logged and counted, and ingest continues.
func (s *Server) appendJournal(name string, ops []durable.Op) {
	if s.durable == nil || len(ops) == 0 {
		return
	}
	if err := s.durable.Append(name, ops); err != nil {
		if s.log != nil {
			s.log.Warn("journal append failed", "stream", name, "error", err)
		}
	}
}

// samplerVersion reads a sampler's mutation counter (0 when the sampler
// does not expose one; such a stream is checkpointed every interval).
func samplerVersion(sm core.Sampler) (uint64, bool) {
	if vs, ok := sm.(core.VersionedSampler); ok {
		return vs.Version(), true
	}
	return 0, false
}

// checkpointStream cuts and writes one stream's checkpoint. force skips
// the quiescence test (restore, shutdown). It returns false when the
// stream was skipped as quiescent.
func (s *Server) checkpointStream(name string, ms *managedStream, force bool) bool {
	// Lock order matches handleSnapshot: capture next/dim under qmu, take
	// the sampler lock, release qmu before the slow work.
	ms.qmu.Lock()
	next, dim := ms.next, ms.dim
	ms.mu.Lock()
	ms.qmu.Unlock()
	ver, versioned := samplerVersion(ms.sampler)
	if !force && versioned && ver-ms.lastCkptVer < s.dcfg.CheckpointMinOps {
		ms.mu.Unlock()
		return false
	}
	// Cut the journal at the exact sampler state being marshaled: both
	// happen under ms.mu, so journal <seq> holds exactly the ops applied
	// after this snapshot.
	seq, err := s.durable.Rotate(name)
	if err != nil {
		ms.mu.Unlock()
		if s.log != nil {
			s.log.Warn("checkpoint rotation failed", "stream", name, "error", err)
		}
		return false
	}
	blob, merr := ms.sampler.MarshalBinary()
	if merr == nil {
		ms.lastCkptVer = ver
	}
	ms.mu.Unlock()
	if merr != nil {
		if s.log != nil {
			s.log.Warn("checkpoint marshal failed", "stream", name, "error", merr)
		}
		return false
	}
	ck := durable.Checkpoint{
		Seq:      seq,
		Meta:     durableMeta(name, ms.createReq),
		Next:     next,
		Dim:      dim,
		Snapshot: blob,
	}
	if err := s.durable.WriteCheckpoint(name, ck); err != nil {
		if s.log != nil {
			s.log.Warn("checkpoint write failed", "stream", name, "error", err)
		}
		return false
	}
	return true
}

// checkpointAll sweeps every stream once.
func (s *Server) checkpointAll(force bool) {
	s.mu.RLock()
	type pair struct {
		name string
		ms   *managedStream
	}
	streams := make([]pair, 0, len(s.streams))
	for name, ms := range s.streams {
		streams = append(streams, pair{name, ms})
	}
	s.mu.RUnlock()
	for _, p := range streams {
		s.checkpointStream(p.name, p.ms, force)
	}
}

// CheckpointNow synchronously checkpoints every stream regardless of
// quiescence — the hook shutdown and the recovery tests use. It is a
// no-op without durability.
func (s *Server) CheckpointNow() {
	if s.durable == nil {
		return
	}
	s.checkpointAll(true)
}

// runDurability is the background loop: journal fsyncs on the coalescing
// interval, checkpoints on the checkpoint interval.
func (s *Server) runDurability() {
	defer s.durWG.Done()
	ckpt := time.NewTicker(s.dcfg.CheckpointInterval)
	defer ckpt.Stop()
	sync := time.NewTicker(s.dcfg.JournalSyncInterval)
	defer sync.Stop()
	for {
		select {
		case <-s.durStop:
			return
		case <-sync.C:
			if err := s.durable.Sync(); err != nil && s.log != nil {
				s.log.Warn("journal sync failed", "error", err)
			}
		case <-ckpt.C:
			s.checkpointAll(false)
		}
	}
}

// replayTail applies a journal tail to a freshly restored sampler, in
// order, and advances the (next, dim) ingest bookkeeping past every
// replayed op. Time-decay streams (including time-decay tier ladders)
// replay through AddAt to reproduce their clock; everything else takes
// the batch path. Shared by startup recovery and transfer install — both
// turn a checkpoint + tail chain into a live sampler.
func replayTail(sampler persistentSampler, tail []durable.Record, next uint64, dim int) (uint64, int, error) {
	td, timed := core.AsTimed(sampler)
	for _, r := range tail {
		if timed {
			for _, op := range r.Ops {
				if op.HasTS {
					if err := td.AddAt(op.P, op.TS); err != nil {
						return next, dim, fmt.Errorf("replaying journal: %w", err)
					}
				} else {
					td.Add(op.P)
				}
			}
		} else {
			batch := make([]stream.Point, len(r.Ops))
			for i, op := range r.Ops {
				batch[i] = op.P
			}
			core.AddBatch(sampler, batch)
		}
		for _, op := range r.Ops {
			if op.P.Index > next {
				next = op.P.Index
			}
			if dim == 0 && len(op.P.Values) > 0 {
				dim = len(op.P.Values)
			}
		}
	}
	return next, dim, nil
}

// recoverDurable rebuilds every stream the data directory holds. Per-file
// corruption was already quarantined by the store; per-stream semantic
// failures (a snapshot that does not restore) quarantine the stream's
// files and skip it. Only a systemic scan failure is returned.
func (s *Server) recoverDurable() error {
	recs, err := s.durable.Recover()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		name := rec.Checkpoint.Meta.Name
		if err := s.adoptRecovered(rec); err != nil {
			s.durable.QuarantineStream(name)
			if s.log != nil {
				s.log.Warn("stream recovery failed; files quarantined", "stream", name, "error", err)
			}
			continue
		}
		if s.log != nil {
			s.log.Info("stream recovered", "stream", name,
				"seq", rec.Checkpoint.Seq, "replayed_records", len(rec.Tail), "torn_tail", rec.TornTail)
		}
	}
	return nil
}

// adoptRecovered turns one recovered chain into a live managed stream and
// rebaselines it with a fresh checkpoint above every on-disk sequence.
func (s *Server) adoptRecovered(rec durable.Recovered) error {
	name := rec.Checkpoint.Meta.Name
	req := createRequestOf(rec.Checkpoint.Meta)
	if req.Policy == "" {
		req.Policy = "variable"
	}
	fresh, err := samplerFactory(req)
	if err != nil {
		return fmt.Errorf("resolving policy: %w", err)
	}
	s.mu.Lock()
	rng := s.seeds.Split()
	s.mu.Unlock()
	sampler, err := fresh(rng)
	if err != nil {
		return fmt.Errorf("rebuilding sampler: %w", err)
	}
	if err := sampler.UnmarshalBinary(rec.Checkpoint.Snapshot); err != nil {
		return fmt.Errorf("restoring snapshot: %w", err)
	}

	next, dim, err := replayTail(sampler, rec.Tail, rec.Checkpoint.Next, rec.Checkpoint.Dim)
	if err != nil {
		return err
	}

	ms := &managedStream{
		sampler:   sampler,
		policy:    req.Policy,
		lambda:    req.Lambda,
		createReq: req,
		fresh:     fresh,
		next:      next,
		dim:       dim,
	}
	ver, _ := samplerVersion(sampler)
	ms.lastCkptVer = ver

	// Rebaseline: one fresh checkpoint above every sequence the disk holds
	// (including corrupt newer generations), so the replayed state is
	// durable again before the stream serves traffic.
	blob, err := sampler.MarshalBinary()
	if err != nil {
		return fmt.Errorf("marshaling recovered sampler: %w", err)
	}
	ck := durable.Checkpoint{
		Seq:      rec.MaxSeq + 1,
		Meta:     durableMeta(name, req),
		Next:     next,
		Dim:      dim,
		Snapshot: blob,
	}
	if err := s.durable.Attach(name, ck); err != nil {
		return fmt.Errorf("rebaselining: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.streams[name]; exists {
		return fmt.Errorf("stream %q already registered", name)
	}
	if s.ingestWorkers > 0 && req.Policy != "timedecay" {
		s.startIngestShard(name, ms)
	}
	s.streams[name] = ms
	return nil
}
