package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// benchIngestBody pre-encodes one ingest request of n points.
func benchIngestBody(b *testing.B, n int) []byte {
	b.Helper()
	pts := make([]IngestPoint, n)
	for i := range pts {
		pts[i] = IngestPoint{Values: []float64{float64(i), float64(n - i)}}
	}
	blob, err := json.Marshal(IngestRequest{Points: pts})
	if err != nil {
		b.Fatal(err)
	}
	return blob
}

func benchCreateStream(b *testing.B, srv *Server, name string) {
	b.Helper()
	body, _ := json.Marshal(CreateRequest{Policy: "variable", Lambda: 1e-4, Capacity: 1000})
	req := httptest.NewRequest(http.MethodPut, "/streams/"+name, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		b.Fatalf("create %s: status %d", name, rec.Code)
	}
}

// BenchmarkIngestHTTPSync measures the full HTTP ingest path with
// synchronous application: handler returns after the batch is sampled.
// One iteration = one request of `batch` points.
func BenchmarkIngestHTTPSync(b *testing.B) {
	const batch = 256
	srv := New(1)
	benchCreateStream(b, srv, "s")
	blob := benchIngestBody(b, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/streams/s/points", bytes.NewReader(blob))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkIngestHTTPSharded measures the async path: the handler
// validates, assigns indices and enqueues; the stream's worker applies
// batches off the request path. 429 rejections are retried so every
// point lands (accepted work, not accepted requests, is what points/s
// reports). The timer includes the final drain, so the number is honest
// end-to-end throughput, not queue-filling speed.
func BenchmarkIngestHTTPSharded(b *testing.B) {
	const batch = 256
	srv := New(1, WithIngestShards(4, 256))
	defer srv.Close()
	benchCreateStream(b, srv, "s")
	blob := benchIngestBody(b, batch)
	ms, _ := srv.lookup("s")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			req := httptest.NewRequest(http.MethodPost, "/streams/s/points", bytes.NewReader(blob))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code == http.StatusAccepted {
				break
			}
			if rec.Code != http.StatusTooManyRequests {
				b.Fatalf("status %d", rec.Code)
			}
			time.Sleep(10 * time.Microsecond)
		}
	}
	for ms.pending.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkIngestHTTPShardedParallel is the sharded path under concurrent
// clients spread over several streams — the scenario the shards exist
// for: handlers only enqueue, so request goroutines never serialize on
// sampler locks.
func BenchmarkIngestHTTPShardedParallel(b *testing.B) {
	const batch = 256
	srv := New(1, WithIngestShards(4, 256))
	defer srv.Close()
	streams := []string{"s0", "s1", "s2", "s3"}
	for _, name := range streams {
		benchCreateStream(b, srv, name)
	}
	blob := benchIngestBody(b, batch)
	b.ReportAllocs()
	b.ResetTimer()
	var sid atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		name := streams[int(sid.Add(1))%len(streams)]
		path := "/streams/" + name + "/points"
		for pb.Next() {
			for {
				req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(blob))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code == http.StatusAccepted {
					break
				}
				if rec.Code != http.StatusTooManyRequests {
					b.Fatalf("status %d", rec.Code)
				}
				time.Sleep(10 * time.Microsecond)
			}
		}
	})
	for _, name := range streams {
		ms, _ := srv.lookup(name)
		for ms.pending.Load() != 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "points/s")
}
