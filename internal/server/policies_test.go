package server

import (
	"net/http"
	"testing"
)

// End-to-end coverage of the new sampler policies through the stream API:
// create, ingest, query, sample, snapshot/restore.
func TestNewSamplerPoliciesRoundTrip(t *testing.T) {
	for _, policy := range []string{"ttbs", "rtbs"} {
		t.Run(policy, func(t *testing.T) {
			ts := newTestServer(t)
			createStream(t, ts.URL, "s", CreateRequest{Policy: policy, Lambda: 1e-2, Capacity: 50})
			ingest(t, ts.URL, "s", floatPoints(500, 0))

			resp, body := do(t, http.MethodGet, ts.URL+"/streams/s", nil)
			if resp.StatusCode != http.StatusOK || body["policy"] != policy {
				t.Fatalf("stats: status %d body %v", resp.StatusCode, body)
			}
			if body["size"].(float64) == 0 {
				t.Fatal("empty reservoir after 500 points")
			}
			// R-TBS is hard-bounded by its capacity; T-TBS fluctuates around
			// its target but 500 points at λ=0.01 stay well under 2× target.
			if size := body["size"].(float64); size > 100 {
				t.Fatalf("reservoir size %v implausible for capacity 50", size)
			}

			resp, body = do(t, http.MethodGet, ts.URL+"/streams/s/sample", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("sample: status %d", resp.StatusCode)
			}
			for _, raw := range body["points"].([]any) {
				p := raw.(map[string]any)
				if prob := p["prob"].(float64); !(prob > 0) || prob > 1 {
					t.Fatalf("point %v has inclusion probability %v outside (0,1]", p["index"], prob)
				}
			}

			resp, body = do(t, http.MethodGet, ts.URL+"/streams/s/query?type=count&h=100", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query: status %d body %v", resp.StatusCode, body)
			}
			if est := body["estimate"].(float64); est < 20 || est > 500 {
				t.Fatalf("count estimate %v wildly off for h=100", est)
			}

			// Snapshot → more ingest → restore rewinds the stream.
			resp, body = do(t, http.MethodGet, ts.URL+"/streams/s/snapshot", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("snapshot: status %d", resp.StatusCode)
			}
			blob := body["raw"].([]byte)
			ingest(t, ts.URL, "s", floatPoints(100, 500))
			resp, body = do(t, http.MethodPost, ts.URL+"/streams/s/restore", blob)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("restore: status %d body %v", resp.StatusCode, body)
			}
			resp, body = do(t, http.MethodGet, ts.URL+"/streams/s", nil)
			if resp.StatusCode != http.StatusOK || body["processed"].(float64) != 500 {
				t.Fatalf("restored stats: status %d body %v", resp.StatusCode, body)
			}
			// And the restored stream keeps ingesting.
			ingest(t, ts.URL, "s", floatPoints(10, 500))
		})
	}
}

func TestNewSamplerPolicyValidation(t *testing.T) {
	ts := newTestServer(t)
	// T-TBS enforces its target bound n ≤ 1/(1-e^{-λ}) ≈ 100 at λ=0.01.
	resp, _ := do(t, http.MethodPut, ts.URL+"/streams/a", CreateRequest{Policy: "ttbs", Lambda: 1e-2, Capacity: 500})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-target T-TBS create: status %d, want 400", resp.StatusCode)
	}
	// Both families need a positive capacity and λ.
	for _, policy := range []string{"ttbs", "rtbs"} {
		resp, _ = do(t, http.MethodPut, ts.URL+"/streams/a", CreateRequest{Policy: policy, Lambda: 1e-2})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with zero capacity: status %d, want 400", policy, resp.StatusCode)
		}
		resp, _ = do(t, http.MethodPut, ts.URL+"/streams/a", CreateRequest{Policy: policy, Capacity: 10})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with zero lambda: status %d, want 400", policy, resp.StatusCode)
		}
	}
}

// Both new families support multi-horizon tier ladders: λ only relaxes the
// T-TBS target bound as tiers deepen, so tier 0 is the binding one.
func TestNewSamplerPoliciesTiered(t *testing.T) {
	for _, policy := range []string{"ttbs", "rtbs"} {
		t.Run(policy, func(t *testing.T) {
			ts := newTestServer(t)
			createStream(t, ts.URL, "s", CreateRequest{Policy: policy, Lambda: 1e-2, Capacity: 30, Tiers: 3})
			ingest(t, ts.URL, "s", floatPoints(400, 0))
			resp, body := do(t, http.MethodGet, ts.URL+"/streams/s", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("stats: status %d", resp.StatusCode)
			}
			tiers, ok := body["tiers"].([]any)
			if !ok || len(tiers) != 3 {
				t.Fatalf("tiered %s stream reports tiers %v", policy, body["tiers"])
			}
			resp, body = do(t, http.MethodGet, ts.URL+"/streams/s/query?type=count&h=2000", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("horizon query: status %d body %v", resp.StatusCode, body)
			}
		})
	}
}
