package server

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"biasedres/internal/client"
	"biasedres/internal/wire"
)

// wireTestFrame packs n points of the given dim into a frame; values are
// a deterministic function of position so HTTP and wire batches match.
func wireTestFrame(n, dim int) *wire.Frame {
	f := &wire.Frame{Dim: dim, Count: n}
	f.Values = make([]float64, n*dim)
	for i := range f.Values {
		f.Values[i] = float64(i%17) * 0.25
	}
	f.Labels = make([]int32, n)
	for i := range f.Labels {
		f.Labels[i] = int32(i % 3)
	}
	return f
}

// wireHTTPPoints is the same batch in the JSON ingest shape.
func wireHTTPPoints(n, dim int) []IngestPoint {
	pts := make([]IngestPoint, n)
	for i := range pts {
		vals := make([]float64, dim)
		for d := range vals {
			vals[d] = float64((i*dim+d)%17) * 0.25
		}
		label := i % 3
		pts[i] = IngestPoint{Values: vals, Label: &label}
	}
	return pts
}

// snapshotBytes fetches a stream's binary checkpoint over the HTTP API.
func snapshotBytes(t *testing.T, srv *Server, name string) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/streams/"+name+"/snapshot", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d body %s", rec.Code, rec.Body)
	}
	return rec.Body.Bytes()
}

func createOn(t *testing.T, srv *Server, name string, req CreateRequest) {
	t.Helper()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	createStream(t, ts.URL, name, req)
}

// TestWireHTTPEquivalence is the acceptance equivalence test: the same
// batch pushed once through JSON HTTP and once through the binary wire
// path (end to end: client.WireConn → TCP → wire.Listener → IngestFrame)
// must leave byte-identical sampler state, proven on the marshaled
// checkpoint. Both servers share a seed, so any divergence in point
// content, ordering or RNG consumption shows up in the bytes.
func TestWireHTTPEquivalence(t *testing.T) {
	const points, dim = 300, 2
	cfg := CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 64}

	httpSrv := New(42)
	createOn(t, httpSrv, "s", cfg)
	ts := httptest.NewServer(httpSrv)
	defer ts.Close()
	ingest(t, ts.URL, "s", wireHTTPPoints(points, dim))

	wireSrv := New(42)
	createOn(t, wireSrv, "s", cfg)
	wl, addr := startWireListener(t, wireSrv)
	defer wl.Close()
	wc, err := client.DialWire(addr, client.WireConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	var cpts []client.Point
	for _, ip := range wireHTTPPoints(points, dim) {
		cpts = append(cpts, client.Point{Values: ip.Values, Label: ip.Label})
	}
	if err := wc.Push("s", cpts); err != nil {
		t.Fatalf("wire push: %v", err)
	}

	httpCkpt := snapshotBytes(t, httpSrv, "s")
	wireCkpt := snapshotBytes(t, wireSrv, "s")
	if string(httpCkpt) != string(wireCkpt) {
		t.Fatalf("checkpoints diverge: HTTP %d bytes, wire %d bytes", len(httpCkpt), len(wireCkpt))
	}
	// Both paths must also agree on the arrival cursor.
	httpSrv.mu.RLock()
	hms := httpSrv.streams["s"]
	httpSrv.mu.RUnlock()
	wireSrv.mu.RLock()
	wms := wireSrv.streams["s"]
	wireSrv.mu.RUnlock()
	if hms.next != wms.next || hms.dim != wms.dim {
		t.Fatalf("cursors diverge: HTTP (next=%d dim=%d), wire (next=%d dim=%d)",
			hms.next, hms.dim, wms.next, wms.dim)
	}
}

// startWireListener serves srv's IngestFrame on a loopback TCP listener.
func startWireListener(t testing.TB, srv *Server) (*wire.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wl := wire.NewListener(srv, wire.WithMetrics(srv.Metrics()))
	go wl.Serve(ln)
	return wl, ln.Addr().String()
}

// TestWireIngestValidation: the error replies are authoritative and
// consume nothing.
func TestWireIngestValidation(t *testing.T) {
	srv := New(1)
	createOn(t, srv, "s", CreateRequest{Policy: "unbiased", Capacity: 32})

	frameFor := func(mut func(*wire.Frame)) *wire.Frame {
		f := wireTestFrame(4, 2)
		mut(f)
		return f
	}
	cases := []struct {
		name string
		f    *wire.Frame
		want string
	}{
		{"unknown-stream", func() *wire.Frame {
			f := wireTestFrame(4, 2)
			f.Name = []byte("ghost")
			return f
		}(), "not found"},
		{"non-monotone-indices", frameFor(func(f *wire.Frame) {
			f.Name = []byte("s")
			f.Indices = []uint64{1, 3, 2, 4}
		}), "does not advance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := srv.IngestFrame(tc.f)
			if r.Status != wire.StatusError || !strings.Contains(r.Msg, tc.want) {
				t.Fatalf("reply = %+v, want error containing %q", r, tc.want)
			}
		})
	}

	// Commit dim via a good frame, then mismatch.
	good := wireTestFrame(4, 2)
	good.Name = []byte("s")
	if r := srv.IngestFrame(good); r.Status != wire.StatusOK {
		t.Fatalf("good frame rejected: %+v", r)
	}
	bad := wireTestFrame(4, 3)
	bad.Name = []byte("s")
	if r := srv.IngestFrame(bad); r.Status != wire.StatusError || !strings.Contains(r.Msg, "dim") {
		t.Fatalf("dim mismatch reply = %+v", r)
	}
	// Nothing from the rejected frames may have been consumed.
	srv.mu.RLock()
	ms := srv.streams["s"]
	srv.mu.RUnlock()
	ms.qmu.Lock()
	next := ms.next
	ms.qmu.Unlock()
	if next != 4 {
		t.Fatalf("next = %d after one accepted frame of 4 points", next)
	}
	ms.mu.Lock()
	processed := ms.sampler.Processed()
	ms.mu.Unlock()
	if processed != 4 {
		t.Fatalf("sampler processed %d, want 4", processed)
	}
}

// TestWireIngestExplicitIndices: a frame carrying indices advances the
// cursor to its last index, and a replay of the same frame is refused —
// the idempotence hook reconnecting clients rely on.
func TestWireIngestExplicitIndices(t *testing.T) {
	srv := New(1)
	createOn(t, srv, "s", CreateRequest{Policy: "unbiased", Capacity: 32})
	f := wireTestFrame(3, 1)
	f.Name = []byte("s")
	f.Indices = []uint64{10, 11, 12}
	if r := srv.IngestFrame(f); r.Status != wire.StatusOK {
		t.Fatalf("indexed frame rejected: %+v", r)
	}
	if r := srv.IngestFrame(f); r.Status != wire.StatusError {
		t.Fatalf("replayed frame accepted: %+v", r)
	}
	srv.mu.RLock()
	ms := srv.streams["s"]
	srv.mu.RUnlock()
	ms.qmu.Lock()
	defer ms.qmu.Unlock()
	if ms.next != 12 {
		t.Fatalf("next = %d, want 12", ms.next)
	}
}

// TestWireIngestBackpressure: with the async queue full, IngestFrame
// answers NACK and consumes nothing; once the queue drains, the resend
// lands. The worker is pinned by holding the sampler lock.
func TestWireIngestBackpressure(t *testing.T) {
	srv := New(1, WithIngestShards(1, 1))
	defer srv.Close()
	createOn(t, srv, "s", CreateRequest{Policy: "unbiased", Capacity: 32})
	srv.mu.RLock()
	ms := srv.streams["s"]
	srv.mu.RUnlock()

	ms.mu.Lock() // pin the shard worker mid-apply
	var acked, nacked int
	var nack wire.Reply
	for i := 0; i < 8 && nacked == 0; i++ {
		f := wireTestFrame(4, 2)
		f.Name = []byte("s")
		switch r := srv.IngestFrame(f); r.Status {
		case wire.StatusOK:
			acked++
		case wire.StatusBackpressure:
			nacked++
			nack = r
		default:
			ms.mu.Unlock()
			t.Fatalf("unexpected reply %+v", r)
		}
	}
	ms.mu.Unlock()
	if nacked == 0 {
		t.Fatal("queue of 1 batch never backpressured")
	}
	if nack.RetryMS == 0 {
		t.Fatalf("NACK carries no retry hint: %+v", nack)
	}
	// Drain, then verify exactly the ACKed points were applied.
	deadline := time.Now().Add(5 * time.Second)
	for ms.pending.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue did not drain")
		}
		time.Sleep(time.Millisecond)
	}
	ms.mu.Lock()
	processed := ms.sampler.Processed()
	ms.mu.Unlock()
	if processed != uint64(4*acked) {
		t.Fatalf("sampler processed %d, want %d (4 × %d ACKed frames)", processed, 4*acked, acked)
	}
	// And the resend after drain succeeds.
	f := wireTestFrame(4, 2)
	f.Name = []byte("s")
	if r := srv.IngestFrame(f); r.Status != wire.StatusOK {
		t.Fatalf("post-drain resend rejected: %+v", r)
	}
}

// TestWireIngestClosedStream: frames for a deleted stream get an
// authoritative error, mirroring the HTTP path's 503-on-shutdown.
func TestWireIngestClosedStream(t *testing.T) {
	srv := New(1, WithIngestShards(1, 4))
	defer srv.Close()
	createOn(t, srv, "s", CreateRequest{Policy: "unbiased", Capacity: 8})
	srv.mu.RLock()
	ms := srv.streams["s"]
	srv.mu.RUnlock()
	closeShard(ms)
	f := wireTestFrame(2, 1)
	f.Name = []byte("s")
	if r := srv.IngestFrame(f); r.Status != wire.StatusError || !strings.Contains(r.Msg, "shutting down") {
		t.Fatalf("reply = %+v, want shutting-down error", r)
	}
}

// TestWireIngestTimeDecay: wire frames reach time-decay streams through
// the synchronous path, advancing the decay clock one unit per point.
func TestWireIngestTimeDecay(t *testing.T) {
	srv := New(1, WithIngestShards(2, 4))
	defer srv.Close()
	createOn(t, srv, "td", CreateRequest{Policy: "timedecay", Lambda: 0.01, Capacity: 16})
	f := wireTestFrame(5, 2)
	f.Name = []byte("td")
	if r := srv.IngestFrame(f); r.Status != wire.StatusOK {
		t.Fatalf("time-decay frame rejected: %+v", r)
	}
	srv.mu.RLock()
	ms := srv.streams["td"]
	srv.mu.RUnlock()
	ms.mu.Lock()
	processed := ms.sampler.Processed()
	ms.mu.Unlock()
	if processed != 5 {
		t.Fatalf("processed = %d, want 5", processed)
	}
}

// TestWireEndToEndAsync drives the full stack against an async server:
// WireConn batches, the listener decodes, frames ride the shard queue,
// and the pending gauge drains to zero.
func TestWireEndToEndAsync(t *testing.T) {
	srv := New(1, WithIngestShards(2, 8))
	defer srv.Close()
	createOn(t, srv, "s", CreateRequest{Policy: "variable", Lambda: 1e-3, Capacity: 128})
	wl, addr := startWireListener(t, srv)
	defer wl.Close()

	wc, err := client.DialWire(addr, client.WireConnConfig{FlushSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	const total = 500
	for i := 0; i < total; i++ {
		if err := wc.Add("s", client.Point{Values: []float64{float64(i), 1}}); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if err := wc.Close(); err != nil { // flushes the remainder
		t.Fatal(err)
	}
	srv.mu.RLock()
	ms := srv.streams["s"]
	srv.mu.RUnlock()
	deadline := time.Now().Add(5 * time.Second)
	for ms.pending.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("pending points did not drain")
		}
		time.Sleep(time.Millisecond)
	}
	ms.mu.Lock()
	processed := ms.sampler.Processed()
	ms.mu.Unlock()
	if processed != total {
		t.Fatalf("processed = %d, want %d", processed, total)
	}
}

// TestWireConnReconnect: a server that drops the connection mid-exchange
// does not lose the frame — the client redials and resends.
func TestWireConnReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// First connection: read the frame, drop the connection without a
	// reply. Second connection: serve properly against a real server.
	srv := New(1)
	createOn(t, srv, "s", CreateRequest{Policy: "unbiased", Capacity: 16})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		io.ReadFull(conn, make([]byte, wire.HeaderLen)) // swallow the header
		conn.Close()                                    // transport failure before any reply
		wl := wire.NewListener(srv)
		wl.Serve(ln)
	}()

	wc, err := client.DialWire(ln.Addr().String(), client.WireConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	err = wc.Push("s", []client.Point{{Values: []float64{1}}, {Values: []float64{2}}})
	if err != nil {
		t.Fatalf("push across reconnect: %v", err)
	}
	srv.mu.RLock()
	ms := srv.streams["s"]
	srv.mu.RUnlock()
	ms.mu.Lock()
	processed := ms.sampler.Processed()
	ms.mu.Unlock()
	if processed != 2 {
		t.Fatalf("processed = %d, want 2", processed)
	}
}

// TestWireConnBackpressureRetry: the client waits out NACKs and the
// frame eventually lands exactly once.
func TestWireConnBackpressureRetry(t *testing.T) {
	srv := New(1, WithIngestShards(1, 1))
	defer srv.Close()
	createOn(t, srv, "s", CreateRequest{Policy: "unbiased", Capacity: 16})
	wl, addr := startWireListener(t, srv)
	defer wl.Close()

	srv.mu.RLock()
	ms := srv.streams["s"]
	srv.mu.RUnlock()

	wc, err := client.DialWire(addr, client.WireConnConfig{MaxRetries: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	// Wedge the worker long enough that the queue fills and at least one
	// push is NACKed, then release.
	ms.mu.Lock()
	seed := []client.Point{{Values: []float64{0}}}
	if err := wc.Push("s", seed); err != nil { // worker picks this up, blocks on mu
		ms.mu.Unlock()
		t.Fatal(err)
	}
	if err := wc.Push("s", seed); err != nil { // fills the queue
		ms.mu.Unlock()
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- wc.Push("s", seed) }() // must NACK until the lock lifts
	time.Sleep(50 * time.Millisecond)
	ms.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatalf("backpressured push failed: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ms.pending.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue did not drain")
		}
		time.Sleep(time.Millisecond)
	}
	ms.mu.Lock()
	processed := ms.sampler.Processed()
	ms.mu.Unlock()
	if processed != 3 {
		t.Fatalf("processed = %d, want exactly 3 (no duplicates, no drops)", processed)
	}
}

// TestWireConnServerError: an authoritative rejection surfaces as
// *client.WireError without retries.
func TestWireConnServerError(t *testing.T) {
	srv := New(1)
	wl, addr := startWireListener(t, srv)
	defer wl.Close()
	wc, err := client.DialWire(addr, client.WireConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	err = wc.Push("ghost", []client.Point{{Values: []float64{1}}})
	var werr *client.WireError
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v, want not-found WireError", err)
	}
	if !errors.As(err, &werr) {
		t.Fatalf("err type = %T, want *client.WireError", err)
	}
}
