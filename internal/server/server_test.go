package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"biasedres/internal/xrand"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(1))
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case []byte:
		rd = bytes.NewReader(b)
	default:
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(resp.Header.Get("Content-Type"), "json") && len(raw) > 0 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	} else {
		decoded = map[string]any{"raw": raw}
	}
	return resp, decoded
}

func createStream(t *testing.T, base, name string, req CreateRequest) {
	t.Helper()
	resp, body := do(t, http.MethodPut, base+"/streams/"+name, req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d body %v", name, resp.StatusCode, body)
	}
}

func ingest(t *testing.T, base, name string, pts []IngestPoint) {
	t.Helper()
	resp, body := do(t, http.MethodPost, base+"/streams/"+name+"/points", IngestRequest{Points: pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d body %v", resp.StatusCode, body)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 10})
	ingest(t, ts.URL, "s", []IngestPoint{{Values: []float64{1}}, {Values: []float64{2}}})
	resp, body := do(t, http.MethodGet, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if body["status"] != "ok" || body["streams"].(float64) != 1 || body["points"].(float64) != 2 {
		t.Fatalf("healthz body %v", body)
	}
}

func TestCreateListDelete(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "a", CreateRequest{Policy: "variable", Lambda: 1e-3, Capacity: 100})
	createStream(t, ts.URL, "b", CreateRequest{Policy: "unbiased", Capacity: 50})

	// Duplicate name conflicts.
	resp, _ := do(t, http.MethodPut, ts.URL+"/streams/a", CreateRequest{Policy: "variable", Lambda: 1e-3, Capacity: 10})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", resp.StatusCode)
	}
	// Bad policy rejected.
	resp, _ = do(t, http.MethodPut, ts.URL+"/streams/c", CreateRequest{Policy: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad policy: status %d", resp.StatusCode)
	}
	// Bad parameters rejected.
	resp, _ = do(t, http.MethodPut, ts.URL+"/streams/c", CreateRequest{Policy: "variable", Lambda: 0, Capacity: 10})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lambda: status %d", resp.StatusCode)
	}

	_, body := do(t, http.MethodGet, ts.URL+"/streams", nil)
	streams := body["streams"].([]any)
	if len(streams) != 2 || streams[0] != "a" || streams[1] != "b" {
		t.Fatalf("list = %v", streams)
	}

	resp, _ = do(t, http.MethodDelete, ts.URL+"/streams/a", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodDelete, ts.URL+"/streams/a", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: status %d", resp.StatusCode)
	}
}

func TestIngestValidation(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 50})

	resp, _ := do(t, http.MethodPost, ts.URL+"/streams/missing/points", IngestRequest{Points: []IngestPoint{{Values: []float64{1}}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing stream: status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/streams/s/points", IngestRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty ingest: status %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/streams/s/points", []byte("{garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", resp.StatusCode)
	}
	ingest(t, ts.URL, "s", []IngestPoint{{Values: []float64{1, 2}}})
	// Dimensionality is fixed by the first point.
	resp, _ = do(t, http.MethodPost, ts.URL+"/streams/s/points", IngestRequest{Points: []IngestPoint{{Values: []float64{1}}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dim mismatch: status %d", resp.StatusCode)
	}
}

func TestStatsAndSample(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "variable", Lambda: 1e-3, Capacity: 100})
	pts := make([]IngestPoint, 1000)
	label := 3
	for i := range pts {
		pts[i] = IngestPoint{Values: []float64{float64(i)}, Label: &label}
	}
	ingest(t, ts.URL, "s", pts)

	resp, stats := do(t, http.MethodGet, ts.URL+"/streams/s", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	if stats["processed"].(float64) != 1000 {
		t.Fatalf("processed = %v", stats["processed"])
	}
	if stats["size"].(float64) == 0 || stats["size"].(float64) > 100 {
		t.Fatalf("size = %v", stats["size"])
	}

	resp, sample := do(t, http.MethodGet, ts.URL+"/streams/s/sample", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: status %d", resp.StatusCode)
	}
	points := sample["points"].([]any)
	if len(points) == 0 {
		t.Fatal("empty sample")
	}
	first := points[0].(map[string]any)
	if first["prob"].(float64) <= 0 {
		t.Fatalf("sample point prob = %v", first["prob"])
	}
}

func TestQueries(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "variable", Lambda: 1e-3, Capacity: 500})
	// 5000 points: values uniform-ish, two labels 9:1.
	rng := xrand.New(3)
	batch := make([]IngestPoint, 5000)
	for i := range batch {
		label := 0
		if i%10 == 0 {
			label = 1
		}
		batch[i] = IngestPoint{Values: []float64{rng.Float64()}, Label: &label}
	}
	ingest(t, ts.URL, "s", batch)

	resp, body := do(t, http.MethodGet, ts.URL+"/streams/s/query?type=count&h=1000", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count: status %d body %v", resp.StatusCode, body)
	}
	if est := body["estimate"].(float64); math.Abs(est-1000) > 400 {
		t.Fatalf("count estimate %v, want ~1000", est)
	}
	if body["variance"].(float64) < 0 {
		t.Fatal("negative variance")
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/streams/s/query?type=average&h=1000", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("average: status %d body %v", resp.StatusCode, body)
	}
	avg := body["average"].([]any)
	if v := avg[0].(float64); v < 0.3 || v > 0.7 {
		t.Fatalf("average = %v", v)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/streams/s/query?type=classdist&h=1000", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classdist: status %d body %v", resp.StatusCode, body)
	}
	dist := body["distribution"].(map[string]any)
	if f := dist["0"].(float64); math.Abs(f-0.9) > 0.1 {
		t.Fatalf("class 0 fraction %v", f)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/streams/s/query?type=selectivity&h=1000&dims=0&lo=0&hi=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("selectivity: status %d body %v", resp.StatusCode, body)
	}
	if sel := body["selectivity"].(float64); math.Abs(sel-0.5) > 0.15 {
		t.Fatalf("selectivity %v", sel)
	}

	resp, body = do(t, http.MethodGet, ts.URL+"/streams/s/query?type=quantile&h=1000&dim=0&q=0.5", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quantile: status %d body %v", resp.StatusCode, body)
	}
	if med := body["quantile"].(float64); med < 0.25 || med > 0.75 {
		t.Fatalf("median %v", med)
	}

	// Error paths.
	for _, q := range []string{
		"type=unknown",
		"type=count&h=abc",
		"type=selectivity&h=10",          // missing rect
		"type=quantile&h=10&dim=0&q=2",   // bad q
		"type=quantile&h=10&dim=-1&q=.5", // bad dim
	} {
		resp, _ := do(t, http.MethodGet, ts.URL+"/streams/s/query?"+q, nil)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("query %q succeeded", q)
		}
	}
}

func TestTimeDecayStreamOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "td", CreateRequest{Policy: "timedecay", Lambda: 0.5, Capacity: 100})
	t1, t2 := 1.0, 2.0
	ingest(t, ts.URL, "td", []IngestPoint{
		{Values: []float64{1}, TS: &t1},
		{Values: []float64{2}, TS: &t2},
	})
	// Out-of-order timestamps are rejected.
	back := 0.5
	resp, body := do(t, http.MethodPost, ts.URL+"/streams/td/points",
		IngestRequest{Points: []IngestPoint{{Values: []float64{3}, TS: &back}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-order ts: status %d body %v", resp.StatusCode, body)
	}
	// A long gap expires old residents.
	far := 1e6
	ingest(t, ts.URL, "td", []IngestPoint{{Values: []float64{4}, TS: &far}})
	resp, stats := do(t, http.MethodGet, ts.URL+"/streams/td", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	if size := stats["size"].(float64); size > 1 {
		t.Fatalf("stale residents survived the gap: size %v", size)
	}
}

func TestSnapshotRestoreOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 50})
	batch := make([]IngestPoint, 500)
	for i := range batch {
		batch[i] = IngestPoint{Values: []float64{float64(i)}}
	}
	ingest(t, ts.URL, "s", batch)

	resp, body := do(t, http.MethodGet, ts.URL+"/streams/s/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	blob := body["raw"].([]byte)
	if len(blob) == 0 {
		t.Fatal("empty snapshot")
	}

	// More ingestion mutates the stream; restore rolls it back.
	ingest(t, ts.URL, "s", batch)
	resp, restored := do(t, http.MethodPost, ts.URL+"/streams/s/restore", blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: status %d body %v", resp.StatusCode, restored)
	}
	if restored["processed"].(float64) != 500 {
		t.Fatalf("restored processed = %v, want 500", restored["processed"])
	}
	// Garbage restore rejected.
	resp, _ = do(t, http.MethodPost, ts.URL+"/streams/s/restore", []byte("junk"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore: status %d", resp.StatusCode)
	}
}

// Regression test: handleRestore used to leave ms.dim at its pre-restore
// value, so restoring a checkpoint into a fresh stream (dim 0) made
// average/groupavg return 409 "stream has no points yet", and ingesting
// points of a different dimensionality afterwards silently switched the
// stream's shape. The dim must be re-derived from the restored reservoir.
func TestRestoreRecoversDimension(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "orig", CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 50})
	batch := make([]IngestPoint, 500)
	for i := range batch {
		batch[i] = IngestPoint{Values: []float64{float64(i), float64(2 * i)}}
	}
	ingest(t, ts.URL, "orig", batch)

	resp, body := do(t, http.MethodGet, ts.URL+"/streams/orig/query?type=average&h=100", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("average on original: status %d body %v", resp.StatusCode, body)
	}
	origAvg := body["average"].([]any)

	resp, body = do(t, http.MethodGet, ts.URL+"/streams/orig/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	blob := body["raw"].([]byte)

	// Restore into a brand-new stream that has never seen a point.
	createStream(t, ts.URL, "clone", CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 50})
	resp, body = do(t, http.MethodPost, ts.URL+"/streams/clone/restore", blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: status %d body %v", resp.StatusCode, body)
	}
	resp, body = do(t, http.MethodGet, ts.URL+"/streams/clone/query?type=average&h=100", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("average after restore: status %d body %v (dim lost)", resp.StatusCode, body)
	}
	cloneAvg := body["average"].([]any)
	if len(cloneAvg) != len(origAvg) {
		t.Fatalf("restored average has %d dims, original %d", len(cloneAvg), len(origAvg))
	}
	for i := range origAvg {
		if cloneAvg[i].(float64) != origAvg[i].(float64) {
			t.Fatalf("restored average %v != original %v", cloneAvg, origAvg)
		}
	}
	// Stats report the recovered dimensionality.
	_, stats := do(t, http.MethodGet, ts.URL+"/streams/clone", nil)
	if stats["dim"].(float64) != 2 {
		t.Fatalf("restored dim = %v, want 2", stats["dim"])
	}
	// And subsequent ingests cannot switch it.
	resp, _ = do(t, http.MethodPost, ts.URL+"/streams/clone/points",
		IngestRequest{Points: []IngestPoint{{Values: []float64{1}}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("1-dim ingest into restored 2-dim stream: status %d, want 400", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPost, ts.URL+"/streams/clone/points",
		IngestRequest{Points: []IngestPoint{{Values: []float64{1, 2}}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("2-dim ingest into restored stream: status %d", resp.StatusCode)
	}
}

// A rejected restore must leave the live sampler untouched.
func TestRestoreFailureLeavesStreamIntact(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 50})
	ingest(t, ts.URL, "s", []IngestPoint{{Values: []float64{1}}, {Values: []float64{2}}})
	resp, _ := do(t, http.MethodPost, ts.URL+"/streams/s/restore", []byte("garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore: status %d", resp.StatusCode)
	}
	_, stats := do(t, http.MethodGet, ts.URL+"/streams/s", nil)
	if stats["processed"].(float64) != 2 || stats["dim"].(float64) != 1 {
		t.Fatalf("stream corrupted by failed restore: %v", stats)
	}
}

// Regression test: a mid-batch bad timestamp used to apply the leading
// points and return a bare 400. Timestamps are now validated before any
// mutation, so a rejected batch leaves the stream exactly as it was.
func TestIngestBadTimestampBatchAtomic(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "td", CreateRequest{Policy: "timedecay", Lambda: 0.1, Capacity: 100})
	t1, t2 := 1.0, 2.0
	ingest(t, ts.URL, "td", []IngestPoint{{Values: []float64{1}, TS: &t1}, {Values: []float64{2}, TS: &t2}})

	// ts=3 is fine, ts=1.5 regresses below it: the whole batch must be
	// rejected with nothing applied.
	t3, bad := 3.0, 1.5
	resp, body := do(t, http.MethodPost, ts.URL+"/streams/td/points",
		IngestRequest{Points: []IngestPoint{
			{Values: []float64{3}, TS: &t3},
			{Values: []float64{4}, TS: &bad},
		}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-timestamp batch: status %d body %v", resp.StatusCode, body)
	}
	_, stats := do(t, http.MethodGet, ts.URL+"/streams/td", nil)
	if stats["processed"].(float64) != 2 {
		t.Fatalf("partial apply: processed = %v, want 2", stats["processed"])
	}

	// A timestamp older than the stream clock is rejected even as the
	// batch head.
	old := 0.5
	resp, _ = do(t, http.MethodPost, ts.URL+"/streams/td/points",
		IngestRequest{Points: []IngestPoint{{Values: []float64{5}, TS: &old}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stale timestamp: status %d", resp.StatusCode)
	}

	// Untimestamped points advance the clock one unit each; a later
	// timestamp inside the batch must respect the advanced clock.
	// Clock is 2: nil moves it to 3, so ts=2.5 is stale.
	mid := 2.5
	resp, _ = do(t, http.MethodPost, ts.URL+"/streams/td/points",
		IngestRequest{Points: []IngestPoint{
			{Values: []float64{6}},
			{Values: []float64{7}, TS: &mid},
		}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("timestamp behind simulated clock: status %d", resp.StatusCode)
	}
	_, stats = do(t, http.MethodGet, ts.URL+"/streams/td", nil)
	if stats["processed"].(float64) != 2 {
		t.Fatalf("partial apply after clock-simulation batch: processed = %v, want 2", stats["processed"])
	}

	// The valid prefix of those rejected batches still ingests cleanly
	// when resubmitted alone.
	ingest(t, ts.URL, "td", []IngestPoint{{Values: []float64{3}, TS: &t3}})
	_, stats = do(t, http.MethodGet, ts.URL+"/streams/td", nil)
	if stats["processed"].(float64) != 3 {
		t.Fatalf("processed = %v, want 3", stats["processed"])
	}
}

// A first batch with internally inconsistent dimensions must not pin the
// stream's dimensionality.
func TestIngestRejectedBatchDoesNotPinDim(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 50})
	resp, _ := do(t, http.MethodPost, ts.URL+"/streams/s/points",
		IngestRequest{Points: []IngestPoint{{Values: []float64{1, 2}}, {Values: []float64{3}}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed-dim batch: status %d", resp.StatusCode)
	}
	// The stream is still unshaped: a 3-dim batch is acceptable.
	resp, _ = do(t, http.MethodPost, ts.URL+"/streams/s/points",
		IngestRequest{Points: []IngestPoint{{Values: []float64{1, 2, 3}}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("3-dim batch after rejected batch: status %d (dim wrongly pinned)", resp.StatusCode)
	}
}

func TestConcurrentIngestAndQuery(t *testing.T) {
	ts := newTestServer(t)
	createStream(t, ts.URL, "s", CreateRequest{Policy: "variable", Lambda: 1e-2, Capacity: 100})
	ingest(t, ts.URL, "s", []IngestPoint{{Values: []float64{0}}})
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				r, _ := do(t, http.MethodPost, ts.URL+"/streams/s/points",
					IngestRequest{Points: []IngestPoint{{Values: []float64{float64(i)}}}})
				if r.StatusCode != http.StatusOK {
					done <- fmt.Errorf("ingest status %d", r.StatusCode)
					return
				}
			}
			done <- nil
		}()
		go func() {
			for i := 0; i < 50; i++ {
				r, _ := do(t, http.MethodGet, ts.URL+"/streams/s/query?type=count&h=100", nil)
				if r.StatusCode != http.StatusOK && r.StatusCode != http.StatusConflict {
					done <- fmt.Errorf("query status %d", r.StatusCode)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
