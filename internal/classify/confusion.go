package classify

import (
	"fmt"
	"sort"
	"strings"
)

// Confusion accumulates a confusion matrix for stream classification:
// counts of (true label, predicted label) pairs, with per-class precision
// and recall derived on demand. The prequential drivers and experiment
// code use it to look past headline accuracy on skewed streams, where a
// classifier can score 99% by always predicting the majority class.
type Confusion struct {
	counts map[[2]int]uint64 // [true, predicted] -> count
	total  uint64
}

// NewConfusion returns an empty confusion matrix.
func NewConfusion() *Confusion {
	return &Confusion{counts: make(map[[2]int]uint64)}
}

// Observe records one (true, predicted) outcome.
func (c *Confusion) Observe(trueLabel, predicted int) {
	c.counts[[2]int{trueLabel, predicted}]++
	c.total++
}

// Total returns the number of observations.
func (c *Confusion) Total() uint64 { return c.total }

// Count returns the number of times trueLabel was predicted as predicted.
func (c *Confusion) Count(trueLabel, predicted int) uint64 {
	return c.counts[[2]int{trueLabel, predicted}]
}

// Accuracy returns the fraction of observations on the diagonal. It
// returns an error before any observation.
func (c *Confusion) Accuracy() (float64, error) {
	if c.total == 0 {
		return 0, fmt.Errorf("classify: no observations")
	}
	var correct uint64
	for k, n := range c.counts {
		if k[0] == k[1] {
			correct += n
		}
	}
	return float64(correct) / float64(c.total), nil
}

// Labels returns every label appearing as truth or prediction, sorted.
func (c *Confusion) Labels() []int {
	set := make(map[int]struct{})
	for k := range c.counts {
		set[k[0]] = struct{}{}
		set[k[1]] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Precision returns the fraction of `label` predictions that were correct;
// ok is false when the label was never predicted.
func (c *Confusion) Precision(label int) (p float64, ok bool) {
	var predicted, correct uint64
	for k, n := range c.counts {
		if k[1] == label {
			predicted += n
			if k[0] == label {
				correct += n
			}
		}
	}
	if predicted == 0 {
		return 0, false
	}
	return float64(correct) / float64(predicted), true
}

// Recall returns the fraction of true `label` observations predicted
// correctly; ok is false when the label never occurred.
func (c *Confusion) Recall(label int) (r float64, ok bool) {
	var actual, correct uint64
	for k, n := range c.counts {
		if k[0] == label {
			actual += n
			if k[1] == label {
				correct += n
			}
		}
	}
	if actual == 0 {
		return 0, false
	}
	return float64(correct) / float64(actual), true
}

// MacroF1 returns the unweighted mean F1 across labels that occurred as
// truth — the metric of choice for the skewed intrusion stream.
func (c *Confusion) MacroF1() (float64, error) {
	if c.total == 0 {
		return 0, fmt.Errorf("classify: no observations")
	}
	var sum float64
	var classes int
	for _, label := range c.Labels() {
		r, ok := c.Recall(label)
		if !ok {
			continue // never a true label: no F1 contribution
		}
		classes++
		p, ok := c.Precision(label)
		if !ok || p+r == 0 {
			continue // counted with F1 = 0
		}
		sum += 2 * p * r / (p + r)
	}
	if classes == 0 {
		return 0, fmt.Errorf("classify: no true labels observed")
	}
	return sum / float64(classes), nil
}

// String renders the matrix as an aligned table (rows = truth, columns =
// prediction).
func (c *Confusion) String() string {
	labels := c.Labels()
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "true\\pred")
	for _, p := range labels {
		fmt.Fprintf(&b, "%8d", p)
	}
	b.WriteByte('\n')
	for _, tr := range labels {
		fmt.Fprintf(&b, "%8d", tr)
		for _, p := range labels {
			fmt.Fprintf(&b, "%8d", c.Count(tr, p))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
