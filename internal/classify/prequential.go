package classify

import (
	"fmt"

	"biasedres/internal/core"
	"biasedres/internal/stream"
)

// Prequential runs the paper's test-then-train protocol: each incoming
// point is first classified against the current reservoir, then its true
// label is revealed, accuracy statistics are updated, and finally the
// sampling policy decides whether to retain the point — exactly the order
// described in Section 5.3.
type Prequential struct {
	clf     *KNN
	sampler core.Sampler
	// warmup points are added to the reservoir without being scored so
	// early accuracy is not dominated by a near-empty training set.
	warmup uint64

	seen    uint64
	scored  uint64
	correct uint64

	// windowed accuracy for progression curves.
	winSize    uint64
	winScored  uint64
	winCorrect uint64

	confusion *Confusion
}

// NewPrequential returns an evaluator feeding sampler and scoring a k-NN
// classifier over it. warmup is the number of initial points that only
// train; window is the length of the rolling accuracy window (0 disables
// windowed reporting).
func NewPrequential(k int, sampler core.Sampler, warmup, window uint64) (*Prequential, error) {
	clf, err := NewKNN(k, sampler)
	if err != nil {
		return nil, err
	}
	return &Prequential{
		clf: clf, sampler: sampler, warmup: warmup, winSize: window,
		confusion: NewConfusion(),
	}, nil
}

// Step processes one stream point: classify (unless warming up), score,
// then offer the point to the sampler. It returns the prediction and
// whether it was scored.
func (pr *Prequential) Step(p stream.Point) (predicted int, scored bool) {
	pr.seen++
	if pr.seen > pr.warmup && pr.sampler.Len() > 0 {
		pred, err := pr.clf.Classify(p.Values)
		if err == nil {
			scored = true
			predicted = pred
			pr.scored++
			pr.winScored++
			pr.confusion.Observe(p.Label, pred)
			if pred == p.Label {
				pr.correct++
				pr.winCorrect++
			}
		}
	}
	pr.sampler.Add(p)
	return predicted, scored
}

// Accuracy returns the cumulative accuracy over all scored points. It
// returns an error before any point has been scored.
func (pr *Prequential) Accuracy() (float64, error) {
	if pr.scored == 0 {
		return 0, fmt.Errorf("classify: no points scored yet")
	}
	return float64(pr.correct) / float64(pr.scored), nil
}

// WindowAccuracy returns the accuracy over the current rolling window and
// resets the window when it is complete. ok is false while the window is
// still filling or windowed reporting is disabled.
func (pr *Prequential) WindowAccuracy() (acc float64, ok bool) {
	if pr.winSize == 0 || pr.winScored < pr.winSize {
		return 0, false
	}
	acc = float64(pr.winCorrect) / float64(pr.winScored)
	pr.winScored, pr.winCorrect = 0, 0
	return acc, true
}

// ConfusionMatrix returns the evaluator's cumulative confusion matrix; the
// returned value is live and keeps accumulating with further Steps.
func (pr *Prequential) ConfusionMatrix() *Confusion { return pr.confusion }

// Seen returns the number of stream points processed.
func (pr *Prequential) Seen() uint64 { return pr.seen }

// Scored returns the number of classified (scored) points.
func (pr *Prequential) Scored() uint64 { return pr.scored }
