// Package classify implements the nearest-neighbour classification
// application of Section 5.3: a k-NN classifier that uses a reservoir sample
// as its training set, plus a prequential (test-then-train) evaluator that
// reproduces the paper's classification-accuracy-vs-stream-progression
// experiments (Figures 7 and 8).
//
// The paper's point is architectural, not algorithmic: sampling turns any
// black-box mining algorithm into a stream algorithm, and a *biased*
// reservoir keeps its training set relevant under evolution while an
// unbiased one slowly fills with stale points.
package classify

import (
	"fmt"
	"sort"

	"biasedres/internal/core"
	"biasedres/internal/stats"
)

// KNN classifies points by majority vote among the k nearest reservoir
// points under Euclidean distance. The paper uses k = 1.
type KNN struct {
	k int
	s core.Sampler
}

// NewKNN returns a k-NN classifier reading its training set from s.
func NewKNN(k int, s core.Sampler) (*KNN, error) {
	if k <= 0 {
		return nil, fmt.Errorf("classify: k must be positive, got %d", k)
	}
	if s == nil {
		return nil, fmt.Errorf("classify: nil sampler")
	}
	return &KNN{k: k, s: s}, nil
}

// Classify predicts the label of x by majority vote among the k nearest
// reservoir points (ties broken toward the closer neighbour's label). It
// returns an error when the reservoir is empty.
func (c *KNN) Classify(x []float64) (int, error) {
	pts := c.s.Points()
	if len(pts) == 0 {
		return 0, fmt.Errorf("classify: empty reservoir")
	}
	if c.k == 1 {
		// Hot path used by the paper's experiments: a single scan.
		best := 0
		bestD := stats.SquaredDistance(x, pts[0].Values)
		for i := 1; i < len(pts); i++ {
			if d := stats.SquaredDistance(x, pts[i].Values); d < bestD {
				bestD, best = d, i
			}
		}
		return pts[best].Label, nil
	}
	type nb struct {
		d     float64
		label int
	}
	nbs := make([]nb, len(pts))
	for i, p := range pts {
		nbs[i] = nb{d: stats.SquaredDistance(x, p.Values), label: p.Label}
	}
	sort.Slice(nbs, func(i, j int) bool { return nbs[i].d < nbs[j].d })
	k := c.k
	if k > len(nbs) {
		k = len(nbs)
	}
	votes := make(map[int]int, k)
	bestLabel, bestVotes := nbs[0].label, 0
	for i := 0; i < k; i++ {
		votes[nbs[i].label]++
		if votes[nbs[i].label] > bestVotes {
			bestVotes = votes[nbs[i].label]
			bestLabel = nbs[i].label
		}
	}
	return bestLabel, nil
}

// K returns the classifier's neighbour count.
func (c *KNN) K() int { return c.k }
