package classify

import (
	"math"
	"strings"
	"testing"
)

func sampleConfusion() *Confusion {
	c := NewConfusion()
	// Class 0: 8 correct, 2 predicted as 1.
	for i := 0; i < 8; i++ {
		c.Observe(0, 0)
	}
	c.Observe(0, 1)
	c.Observe(0, 1)
	// Class 1: 3 correct, 1 predicted as 0.
	for i := 0; i < 3; i++ {
		c.Observe(1, 1)
	}
	c.Observe(1, 0)
	return c
}

func TestConfusionCountsAndAccuracy(t *testing.T) {
	c := sampleConfusion()
	if c.Total() != 14 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Count(0, 0) != 8 || c.Count(0, 1) != 2 || c.Count(1, 0) != 1 || c.Count(1, 1) != 3 {
		t.Fatalf("counts wrong: %v", c.counts)
	}
	acc, err := c.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-11.0/14) > 1e-12 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestConfusionEmptyErrors(t *testing.T) {
	c := NewConfusion()
	if _, err := c.Accuracy(); err == nil {
		t.Error("empty accuracy accepted")
	}
	if _, err := c.MacroF1(); err == nil {
		t.Error("empty macro F1 accepted")
	}
	if _, ok := c.Precision(0); ok {
		t.Error("precision of unseen label ok")
	}
	if _, ok := c.Recall(0); ok {
		t.Error("recall of unseen label ok")
	}
}

func TestConfusionPrecisionRecall(t *testing.T) {
	c := sampleConfusion()
	p0, ok := c.Precision(0)
	if !ok || math.Abs(p0-8.0/9) > 1e-12 {
		t.Fatalf("precision(0) = %v, %v", p0, ok)
	}
	r0, ok := c.Recall(0)
	if !ok || math.Abs(r0-0.8) > 1e-12 {
		t.Fatalf("recall(0) = %v, %v", r0, ok)
	}
	p1, _ := c.Precision(1)
	if math.Abs(p1-0.6) > 1e-12 {
		t.Fatalf("precision(1) = %v", p1)
	}
	r1, _ := c.Recall(1)
	if math.Abs(r1-0.75) > 1e-12 {
		t.Fatalf("recall(1) = %v", r1)
	}
}

func TestConfusionMacroF1(t *testing.T) {
	c := sampleConfusion()
	f1, err := c.MacroF1()
	if err != nil {
		t.Fatal(err)
	}
	f0 := 2 * (8.0 / 9) * 0.8 / (8.0/9 + 0.8)
	f1c := 2 * 0.6 * 0.75 / (0.6 + 0.75)
	want := (f0 + f1c) / 2
	if math.Abs(f1-want) > 1e-12 {
		t.Fatalf("macro F1 = %v, want %v", f1, want)
	}
}

func TestConfusionMacroF1SkewAware(t *testing.T) {
	// A majority-class predictor: 99 of class 0 right, misses the 1 of
	// class 1. Accuracy is high; macro F1 must punish it.
	c := NewConfusion()
	for i := 0; i < 99; i++ {
		c.Observe(0, 0)
	}
	c.Observe(1, 0)
	acc, _ := c.Accuracy()
	f1, err := c.MacroF1()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.98 {
		t.Fatalf("accuracy = %v", acc)
	}
	if f1 > 0.6 {
		t.Fatalf("macro F1 = %v, should punish the missing minority class", f1)
	}
}

func TestConfusionLabelsAndString(t *testing.T) {
	c := sampleConfusion()
	c.Observe(5, 2) // labels appearing only once on either side
	labels := c.Labels()
	want := []int{0, 1, 2, 5}
	if len(labels) != len(want) {
		t.Fatalf("labels = %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
	s := c.String()
	if !strings.Contains(s, "true\\pred") || !strings.Contains(s, "8") {
		t.Fatalf("render:\n%s", s)
	}
}
