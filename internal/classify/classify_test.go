package classify

import (
	"testing"

	"biasedres/internal/core"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

func TestNewKNNValidation(t *testing.T) {
	b, _ := core.NewBiasedReservoir(0.1, xrand.New(1))
	if _, err := NewKNN(0, b); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKNN(1, nil); err == nil {
		t.Error("nil sampler accepted")
	}
}

func TestClassifyEmptyReservoir(t *testing.T) {
	b, _ := core.NewBiasedReservoir(0.1, xrand.New(1))
	c, _ := NewKNN(1, b)
	if _, err := c.Classify([]float64{0}); err == nil {
		t.Fatal("empty reservoir classified")
	}
}

// trainingSampler is a fixed training set exposed through the Sampler
// interface for deterministic classifier tests.
type trainingSampler struct{ pts []stream.Point }

func (f *trainingSampler) Add(p stream.Point)           { f.pts = append(f.pts, p) }
func (f *trainingSampler) Points() []stream.Point       { return f.pts }
func (f *trainingSampler) Sample() []stream.Point       { return append([]stream.Point(nil), f.pts...) }
func (f *trainingSampler) Len() int                     { return len(f.pts) }
func (f *trainingSampler) Capacity() int                { return len(f.pts) }
func (f *trainingSampler) Processed() uint64            { return uint64(len(f.pts)) }
func (f *trainingSampler) InclusionProb(uint64) float64 { return 1 }

func TestClassify1NN(t *testing.T) {
	train := &trainingSampler{pts: []stream.Point{
		{Index: 1, Values: []float64{0, 0}, Label: 0},
		{Index: 2, Values: []float64{10, 10}, Label: 1},
	}}
	c, _ := NewKNN(1, train)
	if got, _ := c.Classify([]float64{1, 1}); got != 0 {
		t.Fatalf("near origin classified %d", got)
	}
	if got, _ := c.Classify([]float64{9, 9}); got != 1 {
		t.Fatalf("near (10,10) classified %d", got)
	}
}

func TestClassifyKNNMajority(t *testing.T) {
	train := &trainingSampler{pts: []stream.Point{
		{Index: 1, Values: []float64{0}, Label: 0},
		{Index: 2, Values: []float64{0.2}, Label: 1},
		{Index: 3, Values: []float64{0.3}, Label: 1},
		{Index: 4, Values: []float64{50}, Label: 0},
	}}
	c, _ := NewKNN(3, train)
	// 3 nearest to 0.1 are labels {0,1,1}: majority 1.
	if got, _ := c.Classify([]float64{0.1}); got != 1 {
		t.Fatalf("majority vote got %d, want 1", got)
	}
	if c.K() != 3 {
		t.Fatalf("K = %d", c.K())
	}
	// k larger than the training set degrades gracefully.
	c5, _ := NewKNN(10, train)
	if _, err := c5.Classify([]float64{0.1}); err != nil {
		t.Fatalf("k>len failed: %v", err)
	}
}

func TestPrequentialLearnsSeparableStream(t *testing.T) {
	cfg := stream.ClusterConfig{Dim: 2, K: 2, Radius: 0.05, Drift: 0, EpochLen: 1000, Total: 5000, Seed: 3}
	g, err := stream.NewClusterGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := core.NewBiasedReservoir(0.01, xrand.New(4))
	pr, err := NewPrequential(1, b, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		pr.Step(p)
	}
	acc, err := pr.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	// Well-separated static clusters: near-perfect accuracy expected.
	if acc < 0.95 {
		t.Fatalf("accuracy %v on separable stream, want >= 0.95", acc)
	}
	if pr.Seen() != 5000 {
		t.Fatalf("Seen = %d", pr.Seen())
	}
	if pr.Scored() != 4900 {
		t.Fatalf("Scored = %d, want seen-warmup", pr.Scored())
	}
}

func TestPrequentialConfusionMatrix(t *testing.T) {
	cfg := stream.ClusterConfig{Dim: 2, K: 2, Radius: 0.05, Drift: 0, EpochLen: 1000, Total: 2000, Seed: 7}
	g, _ := stream.NewClusterGenerator(cfg)
	b, _ := core.NewBiasedReservoir(0.01, xrand.New(8))
	pr, _ := NewPrequential(1, b, 100, 0)
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		pr.Step(p)
	}
	cm := pr.ConfusionMatrix()
	if cm.Total() != pr.Scored() {
		t.Fatalf("confusion total %d != scored %d", cm.Total(), pr.Scored())
	}
	accA, err := pr.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	accB, err := cm.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if accA != accB {
		t.Fatalf("accuracy mismatch: prequential %v vs confusion %v", accA, accB)
	}
	if _, err := cm.MacroF1(); err != nil {
		t.Fatal(err)
	}
}

func TestPrequentialAccuracyBeforeScoring(t *testing.T) {
	b, _ := core.NewBiasedReservoir(0.1, xrand.New(1))
	pr, _ := NewPrequential(1, b, 10, 0)
	if _, err := pr.Accuracy(); err == nil {
		t.Fatal("accuracy before scoring accepted")
	}
}

func TestPrequentialWindowedAccuracy(t *testing.T) {
	cfg := stream.ClusterConfig{Dim: 2, K: 2, Radius: 0.05, Drift: 0, EpochLen: 1000, Total: 3000, Seed: 5}
	g, _ := stream.NewClusterGenerator(cfg)
	b, _ := core.NewBiasedReservoir(0.01, xrand.New(6))
	pr, _ := NewPrequential(1, b, 50, 500)
	windows := 0
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		pr.Step(p)
		if acc, ok := pr.WindowAccuracy(); ok {
			windows++
			if acc < 0 || acc > 1 {
				t.Fatalf("window accuracy %v out of range", acc)
			}
		}
	}
	if windows < 4 {
		t.Fatalf("expected >=4 complete windows, got %d", windows)
	}
	// Windowed reporting disabled.
	pr2, _ := NewPrequential(1, b, 0, 0)
	if _, ok := pr2.WindowAccuracy(); ok {
		t.Fatal("disabled window reported accuracy")
	}
}

// The paper's Figure 8 claim in miniature: on an evolving stream whose
// classes drift apart, the biased reservoir tracks the evolution and ends
// up more accurate than an unbiased reservoir of the same size.
func TestBiasedBeatsUnbiasedUnderEvolution(t *testing.T) {
	mk := func() *stream.ClusterGenerator {
		g, err := stream.NewClusterGenerator(stream.ClusterConfig{
			Dim: 2, K: 4, Radius: 0.35, Drift: 0.06, EpochLen: 400, Total: 60000, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	run := func(s core.Sampler) float64 {
		pr, err := NewPrequential(1, s, 500, 0)
		if err != nil {
			t.Fatal(err)
		}
		g := mk()
		// Score only the latter half of the stream, where reservoir
		// staleness differences have built up.
		for i := 0; i < 30000; i++ {
			p, _ := g.Next()
			s.Add(p)
		}
		for {
			p, ok := g.Next()
			if !ok {
				break
			}
			pr.Step(p)
		}
		acc, err := pr.Accuracy()
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	b, _ := core.NewBiasedReservoir(0.001, xrand.New(12)) // reservoir 1000
	u, _ := core.NewUnbiasedReservoir(1000, xrand.New(13))
	accB, accU := run(b), run(u)
	t.Logf("biased %.4f vs unbiased %.4f", accB, accU)
	if accB <= accU {
		t.Errorf("biased accuracy %v not above unbiased %v under evolution", accB, accU)
	}
}
