package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFormatNum(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "-"},
		{0, "0"},
		{42, "42"},
		{-7, "-7"},
		{0.5, "0.50000"},
		{1234.25, "1234.25000"},
		{0.0001, "1.000e-04"},
		{-0.25, "-0.25000"},
	}
	for _, tc := range cases {
		if got := formatNum(tc.in); got != tc.want {
			t.Errorf("formatNum(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPad(t *testing.T) {
	out := pad([]string{"a", strings.Repeat("x", 20)})
	if len(out[0]) != 14 {
		t.Fatalf("short column padded to %d", len(out[0]))
	}
	if out[1] != strings.Repeat("x", 20) {
		t.Fatalf("long column truncated: %q", out[1])
	}
}

func TestMeanHelper(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean(nil) != 0")
	}
	if got := mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestRenderMisalignedSeries(t *testing.T) {
	r := &Result{ID: "t", Title: "misaligned", XLabel: "x"}
	r.AddPoint("long", 1, 10)
	r.AddPoint("long", 2, 20)
	r.AddPoint("long", 3, 30)
	r.AddPoint("short", 1, 5)
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Rows beyond the short series must render a dash, not panic.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for short series:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header line + column header + 3 data rows
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
}

func TestRenderNotesOnly(t *testing.T) {
	r := &Result{ID: "n", Title: "notes only", Notes: []string{"just a note"}}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "just a note") {
		t.Fatal("note missing")
	}
}

func TestWriteCSV(t *testing.T) {
	r := &Result{ID: "t", Title: "csv", XLabel: "x"}
	r.AddPoint("a", 1, 10)
	r.AddPoint("a", 2, 20)
	r.AddPoint("b", 1, 5)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %v", lines)
	}
	if lines[0] != "x,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,10,5" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "2,20," {
		t.Fatalf("row 2 = %q (short series must leave an empty cell)", lines[2])
	}
}

func TestScaledHelper(t *testing.T) {
	cfg := Config{Scale: 0.1}
	if got := cfg.scaled(1000, 50); got != 100 {
		t.Fatalf("scaled = %d", got)
	}
	if got := cfg.scaled(100, 50); got != 50 {
		t.Fatalf("scaled floor = %d", got)
	}
	if got := (Config{Scale: 1}).trials(3); got != 3 {
		t.Fatalf("default trials = %d", got)
	}
	if got := (Config{Scale: 1, Trials: 7}).trials(3); got != 7 {
		t.Fatalf("override trials = %d", got)
	}
}
