// Package experiments contains one driver per figure of the paper's
// evaluation (Section 5, Figures 1-9). Each driver re-runs the figure's
// workload on this library's samplers and returns the same x/y series the
// paper plots, rendered as aligned text tables.
//
// Every driver accepts a Config whose Scale field shrinks the workload
// proportionally (stream lengths, reservoir sizes and horizons all scale
// together, keeping the dimensionless products λ·h and p_in fixed), so the
// same code serves full paper-scale reproduction, quick CLI runs and unit
// tests. Shape claims — who wins, where, by how much — are preserved under
// scaling; absolute error magnitudes change.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies every workload size; 1.0 reproduces the paper's
	// scale. Must be positive; values much below ~0.02 make reservoirs
	// degenerate.
	Scale float64
	// Seed drives all randomness in the run.
	Seed uint64
	// Trials averages stochastic experiments over this many independent
	// repetitions (0 means a per-figure default).
	Trials int
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 1} }

func (c *Config) validate() error {
	if !(c.Scale > 0) || math.IsNaN(c.Scale) || math.IsInf(c.Scale, 0) {
		return fmt.Errorf("experiments: scale must be positive and finite, got %v", c.Scale)
	}
	return nil
}

// scaled returns max(min, round(base*Scale)).
func (c Config) scaled(base, min int) int {
	v := int(math.Round(float64(base) * c.Scale))
	if v < min {
		v = min
	}
	return v
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

// Series is one named curve: parallel X/Y slices.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Result is the output of one experiment driver.
type Result struct {
	// ID is the figure identifier, e.g. "fig2".
	ID string
	// Title describes the experiment, matching the paper's caption.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the curves; all series of one result share X values.
	Series []Series
	// Notes carries extra free-form lines (checkpoint summaries, ASCII
	// scatter plots for Figure 9).
	Notes []string
}

// AddPoint appends (x, y) to the named series, creating it on first use.
func (r *Result) AddPoint(series string, x, y float64) {
	for i := range r.Series {
		if r.Series[i].Name == series {
			r.Series[i].X = append(r.Series[i].X, x)
			r.Series[i].Y = append(r.Series[i].Y, y)
			return
		}
	}
	r.Series = append(r.Series, Series{Name: series, X: []float64{x}, Y: []float64{y}})
}

// Get returns the named series and whether it exists.
func (r *Result) Get(series string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == series {
			return s, true
		}
	}
	return Series{}, false
}

// Render writes the result as an aligned text table: the shared X column
// followed by one column per series, then any notes.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	if len(r.Series) > 0 {
		cols := make([]string, 0, len(r.Series)+1)
		cols = append(cols, r.XLabel)
		for _, s := range r.Series {
			cols = append(cols, s.Name)
		}
		if _, err := fmt.Fprintf(w, "%s\n", strings.Join(pad(cols), "  ")); err != nil {
			return err
		}
		n := 0
		for _, s := range r.Series {
			if len(s.X) > n {
				n = len(s.X)
			}
		}
		for i := 0; i < n; i++ {
			row := make([]string, 0, len(r.Series)+1)
			x := math.NaN()
			for _, s := range r.Series {
				if i < len(s.X) {
					x = s.X[i]
					break
				}
			}
			row = append(row, formatNum(x))
			for _, s := range r.Series {
				if i < len(s.Y) {
					row = append(row, formatNum(s.Y[i]))
				} else {
					row = append(row, "-")
				}
			}
			if _, err := fmt.Fprintf(w, "%s\n", strings.Join(pad(row), "  ")); err != nil {
				return err
			}
		}
	}
	for _, note := range r.Notes {
		if _, err := fmt.Fprintf(w, "%s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the result's series as CSV — one x column followed by
// one column per series — for external plotting tools. Notes are not
// included.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(r.Series)+1)
	header = append(header, r.XLabel)
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	n := 0
	for _, s := range r.Series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(r.Series)+1)
		x := math.NaN()
		for _, s := range r.Series {
			if i < len(s.X) {
				x = s.X[i]
				break
			}
		}
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, s := range r.Series {
			if i < len(s.Y) {
				row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: flushing CSV: %w", err)
	}
	return nil
}

func formatNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e12:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 0.001:
		return fmt.Sprintf("%.5f", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

func pad(cols []string) []string {
	const width = 14
	out := make([]string, len(cols))
	for i, c := range cols {
		if len(c) < width {
			c = c + strings.Repeat(" ", width-len(c))
		}
		out[i] = c
	}
	return out
}

// mean returns the arithmetic mean of xs (0 for empty input).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
