package experiments

import (
	"fmt"

	"biasedres/internal/core"
	"biasedres/internal/query"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

// Extension experiments beyond the paper's nine figures. They answer
// practical questions the paper leaves to the reader:
//
//	extlambda  How should λ be chosen for a given query horizon?
//	extwindow  How does biased sampling compare to the sliding-window
//	           alternative the paper dismisses as "another extreme"?
//	exttime    What does wall-clock (rather than arrival-indexed) decay
//	           buy under bursty arrival rates?
//	extmodels  How does the sampler family (Aggarwal vs T-TBS vs R-TBS)
//	           affect a continuously retrained model's recovery from
//	           concept drift?
//
// They are registered separately from the paper figures (ExtIDs / RunExt)
// so the figure registry stays a faithful mirror of the paper.

var extRegistry = map[string]Driver{
	"extlambda": ExtLambda,
	"extwindow": ExtWindow,
	"exttime":   ExtTime,
	"extmodels": ExtModels,
}

// ExtIDs returns the extension experiment identifiers in order.
func ExtIDs() []string { return []string{"extlambda", "extwindow", "exttime", "extmodels"} }

// RunExt executes one extension experiment by id.
func RunExt(id string, cfg Config) (*Result, error) {
	d, ok := extRegistry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown extension %q (have %v)", id, ExtIDs())
	}
	return d(cfg)
}

// ExtLambda sweeps the bias rate λ at a fixed reservoir size and fixed
// query horizon, measuring sum-query error on the evolving-cluster stream.
// The trade-off: λ too small leaves the sample spread over stale history
// (like the unbiased baseline); λ too large concentrates the sample in a
// sliver much shorter than the horizon, starving the estimator and blowing
// up the 1/p(r,t) weights (Lemma 4.1). The error minimum sits near
// λ·h ≈ 1 — the rule of thumb the library's documentation recommends.
func ExtLambda(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const dim = 10
	n := cfg.scaled(1000, 50)
	horizon := cfg.scaled(5000, 100)
	total := cfg.scaled(200000, 20*horizon)
	trials := cfg.trials(3)
	// λ·h from 0.05 (nearly unbiased) to 20 (hyper-recent).
	products := []float64{0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20}

	res := &Result{
		ID:     "extlambda",
		Title:  fmt.Sprintf("Choosing λ: sum-query error vs λ·h at fixed horizon h=%d, reservoir %d (synthetic)", horizon, n),
		XLabel: "lambda*h",
		YLabel: "absolute error",
	}
	rng := xrand.New(cfg.Seed + 71)
	for _, prod := range products {
		lambda := prod / float64(horizon)
		if lambda*float64(n) > 1 {
			// p_in = n·λ must stay <= 1: cap the reservoir.
			lambda = 1 / float64(n)
		}
		var errSum float64
		for trial := 0; trial < trials; trial++ {
			ccfg := stream.DefaultClusterConfig()
			ccfg.Total = uint64(total)
			ccfg.Seed = cfg.Seed + uint64(trial)*997
			gen, err := stream.NewClusterGenerator(ccfg)
			if err != nil {
				return nil, err
			}
			truth, err := query.NewTruth(horizon)
			if err != nil {
				return nil, err
			}
			s, err := core.NewVariableReservoir(lambda, n, rng.Split())
			if err != nil {
				return nil, err
			}
			for {
				p, ok := gen.Next()
				if !ok {
					break
				}
				truth.Observe(p)
				s.Add(p)
			}
			exact, err := truth.Average(uint64(horizon), dim)
			if err != nil {
				return nil, err
			}
			e, err := sampleAvgError(s, uint64(horizon), dim, exact)
			if err != nil {
				return nil, err
			}
			errSum += e
		}
		res.AddPoint("biased", prod, errSum/float64(trials))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"parameters: reservoir=%d horizon=%d stream=%d trials=%d; expect an error minimum near λ·h ≈ 1",
		n, horizon, total, trials))
	return res, nil
}

// ExtWindow compares three policies of identical sample size across query
// horizons: the biased reservoir, the unbiased reservoir, and a sliding
// window sampler tuned to one specific window W. The workload is a steady
// linear ramp (the stream's mean climbs at a constant rate), on which the
// window's failure mode is analytic: for a horizon h > W its estimator is
// structurally truncated to the last W arrivals, giving a deterministic
// bias of slope·(h−W)/2 that no amount of sampling can remove, while the
// biased reservoir's Horvitz-Thompson estimate remains unbiased (with
// larger variance) and the one structure serves every horizon. This
// quantifies the paper's "rather unstable solution" remark about pure
// sliding windows.
func ExtWindow(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const dim = 1
	n := cfg.scaled(500, 50)
	window := uint64(cfg.scaled(5000, 100))
	lambda := 1 / float64(window) // biased tuned to the same scale
	if lambda*float64(n) > 1 {
		lambda = 1 / float64(n)
	}
	total := cfg.scaled(200000, int(20*window))
	trials := cfg.trials(5)
	horizons := []uint64{
		window / 10, window / 4, window / 2, window,
		2 * window, 4 * window,
	}
	maxH := int(horizons[len(horizons)-1])
	// Ramp: the mean climbs by 2.0 across the deepest horizon, in small
	// steps of W/10 points, with noise σ = 0.2.
	stepEvery := window / 10
	if stepEvery == 0 {
		stepEvery = 1
	}
	stepSize := 2.0 / (float64(maxH) / float64(stepEvery))

	res := &Result{
		ID: "extwindow",
		Title: fmt.Sprintf(
			"Biased vs unbiased vs sliding-window(W=%d) sum-query error across horizons (linear ramp)", window),
		XLabel: "user horizon",
		YLabel: "absolute error",
	}
	rng := xrand.New(cfg.Seed + 73)
	errB := make([]float64, len(horizons))
	errU := make([]float64, len(horizons))
	errW := make([]float64, len(horizons))
	for trial := 0; trial < trials; trial++ {
		gen, err := stream.NewRegimeGenerator(dim, stepEvery, stepSize, 0.2,
			uint64(total), false, cfg.Seed+uint64(trial)*1009)
		if err != nil {
			return nil, err
		}
		truth, err := query.NewTruth(maxH)
		if err != nil {
			return nil, err
		}
		biased, err := core.NewVariableReservoir(lambda, n, rng.Split())
		if err != nil {
			return nil, err
		}
		unbiased, err := core.NewUnbiasedReservoir(n, rng.Split())
		if err != nil {
			return nil, err
		}
		win, err := core.NewWindowReservoir(window, n, rng.Split())
		if err != nil {
			return nil, err
		}
		for {
			p, ok := gen.Next()
			if !ok {
				break
			}
			truth.Observe(p)
			biased.Add(p)
			unbiased.Add(p)
			win.Add(p)
		}
		for i, h := range horizons {
			exact, err := truth.Average(h, dim)
			if err != nil {
				return nil, err
			}
			eb, err := sampleAvgError(biased, h, dim, exact)
			if err != nil {
				return nil, err
			}
			eu, err := sampleAvgError(unbiased, h, dim, exact)
			if err != nil {
				return nil, err
			}
			ew, err := sampleAvgError(win, h, dim, exact)
			if err != nil {
				return nil, err
			}
			errB[i] += eb
			errU[i] += eu
			errW[i] += ew
		}
	}
	for i, h := range horizons {
		res.AddPoint("biased", float64(h), errB[i]/float64(trials))
		res.AddPoint("unbiased", float64(h), errU[i]/float64(trials))
		res.AddPoint("window", float64(h), errW[i]/float64(trials))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"parameters: sample=%d λ=%.3g W=%d trials=%d; for h > W the window estimator is structurally truncated to the last W arrivals, an error floor that grows with drift, while the biased estimator stays unbiased at higher variance",
		n, lambda, window, trials))
	return res, nil
}
