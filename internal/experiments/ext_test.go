package experiments

import "testing"

func TestExtRegistry(t *testing.T) {
	ids := ExtIDs()
	if len(ids) != 4 {
		t.Fatalf("extension ids = %v", ids)
	}
	for _, id := range ids {
		if _, ok := extRegistry[id]; !ok {
			t.Errorf("id %q not in registry", id)
		}
	}
	if _, err := RunExt("nope", DefaultConfig()); err == nil {
		t.Fatal("unknown extension accepted")
	}
}

// Time-decay answers time-horizon queries under bursty arrivals better
// than an arrival-indexed reservoir using a rate conversion.
func TestExtTimeShape(t *testing.T) {
	res, err := ExtTime(testCfg(0.5))
	if err != nil {
		t.Fatal(err)
	}
	td, _ := res.Get("time-decay")
	avg, _ := res.Get("index-avgrate")
	if len(td.Y) < 6 || len(avg.Y) != len(td.Y) {
		t.Fatalf("series lengths %d/%d", len(td.Y), len(avg.Y))
	}
	// Skip the first two phases (cold start) and compare means.
	mtd, mavg := mean(td.Y[2:]), mean(avg.Y[2:])
	t.Logf("mean error: time-decay %.4f, index-avgrate %.4f", mtd, mavg)
	if mtd >= mavg {
		t.Errorf("time-decay error %v not below index-avgrate %v", mtd, mavg)
	}
}

// Every sampler family's model must ride out the regime shift: drift
// fires, the model retrains, and end-of-stream accuracy recovers well
// above the 50% a stale single-regime classifier would score.
func TestExtModelsShape(t *testing.T) {
	res, err := ExtModels(testCfg(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"variable", "ttbs", "rtbs"} {
		s, ok := res.Get(name)
		if !ok || len(s.Y) < 3 {
			t.Fatalf("series %q missing or short: %v", name, s)
		}
		if final := s.Y[len(s.Y)-1]; final < 0.6 {
			t.Errorf("%s: final rolling accuracy %.3f, want >= 0.6 after retrain", name, final)
		}
	}
	if len(res.Notes) != 4 {
		t.Fatalf("notes = %v", res.Notes)
	}
}

// The λ sweep must show the documented U-shape: the λ·h ≈ 1 region beats
// both extremes.
func TestExtLambdaShape(t *testing.T) {
	res, err := ExtLambda(testCfg(0.08))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := res.Get("biased")
	if !ok || len(s.Y) < 7 {
		t.Fatalf("series missing or short: %v", s.Y)
	}
	// Index of λ·h = 1 in the sweep {0.05,0.1,0.2,0.5,1,2,5,10,20}.
	mid := 4
	first, last := s.Y[0], s.Y[len(s.Y)-1]
	if s.Y[mid] >= first {
		t.Errorf("λ·h=1 error %v not below λ·h=0.05 error %v", s.Y[mid], first)
	}
	if s.Y[mid] >= last {
		t.Errorf("λ·h=1 error %v not below λ·h=20 error %v", s.Y[mid], last)
	}
}

// The window sampler must win (or at least compete) at its own horizon but
// be unable to answer deeper horizons, where the biased reservoir still
// can.
func TestExtWindowShape(t *testing.T) {
	res, err := ExtWindow(testCfg(0.08))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := res.Get("biased")
	w, _ := res.Get("window")
	u, _ := res.Get("unbiased")
	if len(b.Y) != 6 || len(w.Y) != 6 || len(u.Y) != 6 {
		t.Fatalf("series lengths %d/%d/%d", len(b.Y), len(w.Y), len(u.Y))
	}
	// Beyond its window (h = 2W, 4W) the window sampler's error must
	// exceed the biased sampler's: it has no points there at all.
	for _, i := range []int{4, 5} {
		if w.Y[i] <= b.Y[i] {
			t.Errorf("h=%v: window error %v not above biased %v (window cannot see past W)",
				b.X[i], w.Y[i], b.Y[i])
		}
	}
	// At small horizons the biased reservoir beats unbiased as usual.
	if b.Y[0] >= u.Y[0] {
		t.Errorf("smallest horizon: biased %v not below unbiased %v", b.Y[0], u.Y[0])
	}
}
