package experiments

import "fmt"

// Claims encode each figure's qualitative result — the thing a reader
// checks a reproduction against — as executable assertions over a Result.
// `cmd/experiments -check` evaluates them after regenerating a figure, so
// "does the reproduction still hold?" is a command, not a judgement call.
//
// Claims are deliberately about orderings and trends, not absolute values:
// absolute errors depend on the simulated data (DESIGN.md §5), orderings
// do not.

// Claim is one verifiable statement about a figure.
type Claim struct {
	// Text states the claim in the paper's language.
	Text string
	// Holds evaluates the claim against a regenerated Result.
	Holds func(*Result) bool
}

// ClaimOutcome pairs a claim with its evaluation.
type ClaimOutcome struct {
	Text string
	OK   bool
}

// claims maps figure/extension ids to their claims.
var claims = map[string][]Claim{
	"fig1": {
		{
			Text: "the variable scheme fills the reservoir within the chart (final fill >= 95%)",
			Holds: func(r *Result) bool {
				v, ok := r.Get("variable")
				return ok && last(v.Y) >= 0.95
			},
		},
		{
			Text: "the fixed scheme is far from full at the end of the chart (fill <= 50%)",
			Holds: func(r *Result) bool {
				f, ok := r.Get("fixed")
				return ok && last(f.Y) <= 0.5
			},
		},
		{
			Text: "variable utilization dominates fixed at every checkpoint",
			Holds: func(r *Result) bool {
				v, okV := r.Get("variable")
				f, okF := r.Get("fixed")
				if !okV || !okF || len(v.Y) != len(f.Y) {
					return false
				}
				for i := range v.Y {
					if v.Y[i]+1e-9 < f.Y[i] {
						return false
					}
				}
				return true
			},
		},
	},
	"fig2": horizonClaims(),
	"fig3": horizonClaims(),
	// Figure 4's class-estimation error "shows considerable random
	// variations because of the skewed nature of the class
	// distributions" (paper) — the stability claim is not asserted.
	"fig4": horizonClaims()[:2],
	"fig5": horizonClaims(),
	"fig6": {
		{
			Text: "at the final checkpoint the unbiased error exceeds the biased error",
			Holds: func(r *Result) bool {
				b, okB := r.Get("biased")
				u, okU := r.Get("unbiased")
				return okB && okU && last(u.Y) > last(b.Y)
			},
		},
		{
			Text: "the unbiased error deteriorates with progression (late half above early half)",
			Holds: func(r *Result) bool {
				u, ok := r.Get("unbiased")
				if !ok || len(u.Y) < 4 {
					return false
				}
				half := len(u.Y) / 2
				return mean(u.Y[half:]) > mean(u.Y[:half])
			},
		},
		{
			Text: "the biased error stays flat (late half within 2x of early half)",
			Holds: func(r *Result) bool {
				b, ok := r.Get("biased")
				if !ok || len(b.Y) < 4 {
					return false
				}
				half := len(b.Y) / 2
				early := mean(b.Y[:half])
				return early == 0 || mean(b.Y[half:]) <= 2*early
			},
		},
	},
	"fig7": accuracyClaims(),
	"fig8": accuracyClaims(),
	"fig9": {
		{
			Text: "at the final checkpoint the unbiased reservoir mixes classes more than the biased one",
			Holds: func(r *Result) bool {
				b, okB := r.Get("mixing-biased")
				u, okU := r.Get("mixing-unbiased")
				return okB && okU && last(u.Y) > last(b.Y)
			},
		},
		{
			Text: "the biased reservoir tracks the growing centroid spread at least as closely as the unbiased one",
			Holds: func(r *Result) bool {
				b, okB := r.Get("spread-biased")
				u, okU := r.Get("spread-unbiased")
				return okB && okU && last(b.Y) >= last(u.Y)
			},
		},
		{
			Text: "the biased reservoir's centroid spread grows with stream progression",
			Holds: func(r *Result) bool {
				b, ok := r.Get("spread-biased")
				return ok && len(b.Y) >= 2 && last(b.Y) > b.Y[0]
			},
		},
	},
	"extlambda": {
		{
			Text: "error at λ·h = 1 is below both sweep extremes (U-shape)",
			Holds: func(r *Result) bool {
				s, ok := r.Get("biased")
				if !ok || len(s.Y) < 5 {
					return false
				}
				midIdx := 0
				for i, x := range s.X {
					if x == 1 {
						midIdx = i
					}
				}
				return s.Y[midIdx] < s.Y[0] && s.Y[midIdx] < last(s.Y)
			},
		},
	},
	"extwindow": {
		{
			Text: "beyond its window the window sampler's error exceeds the biased sampler's",
			Holds: func(r *Result) bool {
				b, okB := r.Get("biased")
				w, okW := r.Get("window")
				if !okB || !okW || len(b.Y) < 2 || len(w.Y) != len(b.Y) {
					return false
				}
				n := len(b.Y)
				return w.Y[n-1] > b.Y[n-1] && w.Y[n-2] > b.Y[n-2]
			},
		},
		{
			Text: "at the smallest horizon the biased sampler beats the unbiased one",
			Holds: func(r *Result) bool {
				b, okB := r.Get("biased")
				u, okU := r.Get("unbiased")
				return okB && okU && len(b.Y) > 0 && b.Y[0] < u.Y[0]
			},
		},
	},
	"extmodels": {
		{
			Text: "every sampler family's accuracy minimum lands in the window containing the regime shift",
			Holds: func(r *Result) bool {
				for _, name := range []string{"variable", "ttbs", "rtbs"} {
					s, ok := r.Get(name)
					if !ok || len(s.X) < 4 {
						return false
					}
					minIdx := 0
					for i, y := range s.Y {
						if y < s.Y[minIdx] {
							minIdx = i
						}
					}
					// The shift sits at half the stream; the dip must land in
					// the first window boundary past it.
					half := last(s.X) / 2
					step := s.X[1] - s.X[0]
					if s.X[minIdx] <= half || s.X[minIdx] > half+step {
						return false
					}
				}
				return true
			},
		},
		{
			Text: "drift-triggered retraining recovers every family to >= 98% windowed accuracy by the end",
			Holds: func(r *Result) bool {
				for _, name := range []string{"variable", "ttbs", "rtbs"} {
					s, ok := r.Get(name)
					if !ok || len(s.Y) == 0 || last(s.Y) < 0.98 {
						return false
					}
				}
				return true
			},
		},
	},
	"exttime": {
		{
			Text: "past the cold start, the time-decay reservoir answers time horizons better than the average-rate index conversion",
			Holds: func(r *Result) bool {
				td, okT := r.Get("time-decay")
				avg, okA := r.Get("index-avgrate")
				if !okT || !okA || len(td.Y) < 4 || len(avg.Y) != len(td.Y) {
					return false
				}
				return mean(td.Y[2:]) < mean(avg.Y[2:])
			},
		},
	},
}

// horizonClaims is the shared claim set of Figures 2-5.
func horizonClaims() []Claim {
	return []Claim{
		{
			Text: "at the smallest horizon the biased scheme's error is below the unbiased scheme's",
			Holds: func(r *Result) bool {
				b, okB := r.Get("biased")
				u, okU := r.Get("unbiased")
				return okB && okU && len(b.Y) > 0 && len(u.Y) > 0 && b.Y[0] < u.Y[0]
			},
		},
		{
			Text: "averaged over the smaller half of the horizons, biased error is below unbiased error",
			Holds: func(r *Result) bool {
				b, okB := r.Get("biased")
				u, okU := r.Get("unbiased")
				if !okB || !okU || len(b.Y) < 4 || len(u.Y) != len(b.Y) {
					return false
				}
				half := len(b.Y) / 2
				return mean(b.Y[:half]) < mean(u.Y[:half])
			},
		},
		{
			Text: "the biased error is stable across horizons (max within 8x of min)",
			Holds: func(r *Result) bool {
				b, ok := r.Get("biased")
				if !ok || len(b.Y) == 0 {
					return false
				}
				lo, hi := b.Y[0], b.Y[0]
				for _, y := range b.Y {
					if y < lo {
						lo = y
					}
					if y > hi {
						hi = y
					}
				}
				return lo > 0 && hi/lo <= 8
			},
		},
	}
}

// accuracyClaims is the shared claim set of Figures 7-8.
func accuracyClaims() []Claim {
	return []Claim{
		{
			Text: "mean windowed accuracy of the biased reservoir is at least the unbiased one's",
			Holds: func(r *Result) bool {
				b, okB := r.Get("biased")
				u, okU := r.Get("unbiased")
				return okB && okU && mean(b.Y) >= mean(u.Y)
			},
		},
		{
			Text: "all accuracies are valid probabilities",
			Holds: func(r *Result) bool {
				for _, s := range r.Series {
					for _, y := range s.Y {
						if y < 0 || y > 1 {
							return false
						}
					}
				}
				return true
			},
		},
	}
}

// CheckClaims evaluates the registered claims of a figure or extension
// against a regenerated result. It returns an error for ids without
// claims.
func CheckClaims(id string, res *Result) ([]ClaimOutcome, error) {
	cs, ok := claims[id]
	if !ok {
		return nil, fmt.Errorf("experiments: no claims registered for %q", id)
	}
	out := make([]ClaimOutcome, len(cs))
	for i, c := range cs {
		out[i] = ClaimOutcome{Text: c.Text, OK: c.Holds(res)}
	}
	return out, nil
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
