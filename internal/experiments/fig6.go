package experiments

import (
	"fmt"

	"biasedres/internal/core"
	"biasedres/internal/query"
	"biasedres/internal/stats"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

// Fig6 reproduces Figure 6: sum-query error with stream progression at a
// *fixed* horizon h = 10⁴ on the synthetic stream — the same query asked
// again and again as the stream grows. The paper's claim: the unbiased
// scheme's error deteriorates with progression because a shrinking fraction
// of its reservoir is relevant, while the memory-less biased scheme stays
// flat.
func Fig6(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const dim = 10
	n, lambda := queryParams(cfg)
	horizon := cfg.scaled(10000, 100)
	total := cfg.scaled(400000, 8*horizon)
	checkpoints := 8
	every := total / checkpoints
	trials := cfg.trials(3)

	errB := make([]float64, checkpoints)
	errU := make([]float64, checkpoints)
	xs := make([]float64, checkpoints)
	rng := xrand.New(cfg.Seed + 23)
	for trial := 0; trial < trials; trial++ {
		ccfg := stream.DefaultClusterConfig()
		ccfg.Total = uint64(total)
		ccfg.Seed = cfg.Seed + uint64(trial)*311
		gen, err := stream.NewClusterGenerator(ccfg)
		if err != nil {
			return nil, err
		}
		truth, err := query.NewTruth(horizon)
		if err != nil {
			return nil, err
		}
		biased, err := core.NewConstrainedReservoir(lambda, n, rng.Split())
		if err != nil {
			return nil, err
		}
		unbiased, err := core.NewUnbiasedReservoir(n, rng.Split())
		if err != nil {
			return nil, err
		}
		check := 0
		for i := 1; i <= total; i++ {
			p, ok := gen.Next()
			if !ok {
				break
			}
			truth.Observe(p)
			biased.Add(p)
			unbiased.Add(p)
			if i%every == 0 && check < checkpoints {
				exact, err := truth.Average(uint64(horizon), dim)
				if err != nil {
					return nil, err
				}
				eb, err := sampleAvgError(biased, uint64(horizon), dim, exact)
				if err != nil {
					return nil, err
				}
				eu, err := sampleAvgError(unbiased, uint64(horizon), dim, exact)
				if err != nil {
					return nil, err
				}
				errB[check] += eb
				errU[check] += eu
				xs[check] = float64(i)
				check++
			}
		}
	}
	res := &Result{
		ID:     "fig6",
		Title:  fmt.Sprintf("Sum query error with stream progression, fixed horizon h=%d (synthetic)", horizon),
		XLabel: "progression of stream (points)",
		YLabel: "absolute error",
	}
	for i := 0; i < checkpoints; i++ {
		res.AddPoint("biased", xs[i], errB[i]/float64(trials))
		res.AddPoint("unbiased", xs[i], errU[i]/float64(trials))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"parameters: reservoir=%d λ=%.3g horizon=%d trials=%d", n, lambda, horizon, trials))
	return res, nil
}

// sampleAvgError evaluates the horizon-average estimate of one sampler
// against the exact answer, treating "no relevant sample" as a zero
// estimate (the null result).
func sampleAvgError(s core.Sampler, h uint64, dim int, exact []float64) (float64, error) {
	est, err := query.HorizonAverage(s, h, dim)
	if err != nil {
		est = make([]float64, dim)
	}
	return stats.MeanAbsError(est, exact)
}
