package experiments

import (
	"fmt"

	"biasedres/internal/classify"
	"biasedres/internal/core"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

// Figures 7 and 8 share one protocol (Section 5.3): feed the stream to a
// biased and an unbiased reservoir of equal size; every point is first
// classified by a 1-NN classifier over each reservoir, then its true label
// is revealed and the sampling policies decide retention. The figures plot
// windowed classification accuracy against stream progression.
//
// Paper parameters: reservoir of 1000 points, λ = 10⁻⁴. To keep the O(n)
// nearest-neighbour scan affordable at paper scale we score every stride-th
// point rather than every point; accuracy is a ratio, so subsampled scoring
// estimates the same curve.

type classSpec struct {
	id, title string
	mkStream  func(seed uint64) (stream.Stream, error)
	stride    int
	windows   int
}

func runClassification(cfg Config, spec classSpec) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.scaled(1000, 50)
	lambda := 0.1 / float64(n) // p_in = 0.1, as in the query experiments
	rng := xrand.New(cfg.Seed + 31)

	src, err := spec.mkStream(cfg.Seed)
	if err != nil {
		return nil, err
	}
	biased, err := core.NewConstrainedReservoir(lambda, n, rng.Split())
	if err != nil {
		return nil, err
	}
	unbiased, err := core.NewUnbiasedReservoir(n, rng.Split())
	if err != nil {
		return nil, err
	}
	knnB, err := classify.NewKNN(1, biased)
	if err != nil {
		return nil, err
	}
	knnU, err := classify.NewKNN(1, unbiased)
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     spec.id,
		Title:  spec.title,
		XLabel: "progression of stream (points)",
		YLabel: "classification accuracy",
	}

	// Buffer the stream once to size the windows.
	pts := stream.Collect(src, 0)
	total := len(pts)
	if total == 0 {
		return nil, fmt.Errorf("experiments: %s: empty stream", spec.id)
	}
	warmup := 2 * n
	if warmup >= total/2 {
		warmup = total / 10
	}
	windowLen := (total - warmup) / spec.windows
	if windowLen < 1 {
		windowLen = 1
	}

	var scoredB, correctB, scoredU, correctU int
	window := 0
	for i, p := range pts {
		if i >= warmup && (i-warmup)%spec.stride == 0 {
			if pred, err := knnB.Classify(p.Values); err == nil {
				scoredB++
				if pred == p.Label {
					correctB++
				}
			}
			if pred, err := knnU.Classify(p.Values); err == nil {
				scoredU++
				if pred == p.Label {
					correctU++
				}
			}
		}
		biased.Add(p)
		unbiased.Add(p)
		if i >= warmup && (i-warmup+1)%windowLen == 0 && window < spec.windows {
			if scoredB > 0 {
				res.AddPoint("biased", float64(i+1), float64(correctB)/float64(scoredB))
			}
			if scoredU > 0 {
				res.AddPoint("unbiased", float64(i+1), float64(correctU)/float64(scoredU))
			}
			scoredB, correctB, scoredU, correctU = 0, 0, 0, 0
			window++
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"parameters: reservoir=%d λ=%.3g 1-NN stride=%d warmup=%d windows=%d",
		n, lambda, spec.stride, warmup, spec.windows))
	return res, nil
}

// Fig7 reproduces Figure 7: classification accuracy with stream progression
// on the network-intrusion stream. The simulator runs with more
// within-class noise and centroid drift than the query experiments
// (Noise 1.2, DriftScale 0.12): the real KDD'99 classes overlap enough that
// 1-NN accuracy sits well below 1 and reservoir staleness costs accuracy,
// and this configuration reproduces that regime (see DESIGN.md §5).
func Fig7(cfg Config) (*Result, error) {
	total := cfg.scaled(int(stream.KDD99Size), 5000)
	mk := func(seed uint64) (stream.Stream, error) {
		return stream.NewIntrusionGenerator(stream.IntrusionConfig{
			Total:      uint64(total),
			Seed:       seed,
			Noise:      1.2,
			DriftScale: 0.12,
		})
	}
	return runClassification(cfg, classSpec{
		id:       "fig7",
		title:    "Classification accuracy with progression of stream (network intrusion)",
		mkStream: mk,
		stride:   25,
		windows:  10,
	})
}

// Fig8 reproduces Figure 8: classification accuracy with stream progression
// on the synthetic evolving-cluster stream (cluster id as class label). As
// the clusters drift apart the problem gets easier; the biased reservoir's
// accuracy rises while the unbiased reservoir, diluted with stale history,
// stays flat or declines.
func Fig8(cfg Config) (*Result, error) {
	return runClassification(cfg, classSpec{
		id:       "fig8",
		title:    "Classification accuracy with progression of stream (synthetic)",
		mkStream: clusterStream(cfg),
		stride:   10,
		windows:  10,
	})
}
