package experiments

import (
	"fmt"

	"biasedres/internal/core"
	"biasedres/internal/evolution"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

// Fig9 reproduces Figure 9: the evolution of the reservoir's contents with
// stream progression, biased versus unbiased, on the synthetic stream whose
// clusters drift apart over time.
//
// The paper shows six scatter plots (both reservoirs at three checkpoints)
// projected on the first two dimensions, and argues visually that the
// biased reservoir's clusters separate with the stream while the unbiased
// reservoir's points diffuse and mix. This driver renders the same scatter
// plots in ASCII and, more importantly, quantifies the claim with two
// numeric series per scheme: the class-mixing index (fraction of reservoir
// points whose nearest reservoir neighbour has a different label — low
// means sharp clusters) and the mean pairwise centroid distance.
func Fig9(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.scaled(1000, 60)
	lambda := 0.1 / float64(n)
	total := cfg.scaled(400000, 3000)
	checkpoints := []int{total / 3, 2 * total / 3, total}

	ccfg := stream.DefaultClusterConfig()
	ccfg.Total = uint64(total)
	ccfg.Seed = cfg.Seed
	gen, err := stream.NewClusterGenerator(ccfg)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed + 47)
	biased, err := core.NewConstrainedReservoir(lambda, n, rng.Split())
	if err != nil {
		return nil, err
	}
	unbiased, err := core.NewUnbiasedReservoir(n, rng.Split())
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig9",
		Title:  "Evolution of reservoir contents with stream progression, biased vs unbiased (synthetic)",
		XLabel: "progression of stream (points)",
		YLabel: "class-mixing index / centroid spread",
	}
	next := 0
	for i := 1; i <= total; i++ {
		p, ok := gen.Next()
		if !ok {
			break
		}
		biased.Add(p)
		unbiased.Add(p)
		if next < len(checkpoints) && i == checkpoints[next] {
			if err := fig9Checkpoint(res, uint64(i), biased, unbiased); err != nil {
				return nil, err
			}
			next++
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf("parameters: reservoir=%d λ=%.3g", n, lambda))
	return res, nil
}

func fig9Checkpoint(res *Result, t uint64, biased, unbiased core.Sampler) error {
	for _, side := range []struct {
		name string
		s    core.Sampler
	}{{"biased", biased}, {"unbiased", unbiased}} {
		pts := side.s.Points()
		mix, err := evolution.MixingIndex(pts)
		if err != nil {
			return fmt.Errorf("experiments: fig9 %s mixing at t=%d: %w", side.name, t, err)
		}
		spread, err := evolution.CentroidSpread(pts)
		if err != nil {
			return fmt.Errorf("experiments: fig9 %s spread at t=%d: %w", side.name, t, err)
		}
		res.AddPoint("mixing-"+side.name, float64(t), mix)
		res.AddPoint("spread-"+side.name, float64(t), spread)

		snap, err := evolution.Project(pts, t, 0, 1)
		if err != nil {
			return err
		}
		plot, err := evolution.RenderASCII(snap, 64, 16)
		if err != nil {
			return err
		}
		res.Notes = append(res.Notes, fmt.Sprintf("--- %s reservoir at t=%d (mixing %.3f, spread %.3f) ---\n%s",
			side.name, t, mix, spread, plot))
	}
	return nil
}
