package experiments

import (
	"fmt"

	"biasedres/internal/core"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

// Fig1 reproduces Figure 1: fractional reservoir utilization of variable
// versus fixed reservoir sampling on the network-intrusion stream.
//
// Paper parameters: true reservoir size n_max = 1000, λ = 10⁻⁵, hence fixed
// insertion probability p_in = n_max·λ = 0.01. The paper's observations:
// the variable scheme fills the 1000-point reservoir after only ~1000
// points and keeps it full; the fixed scheme holds ~95 points at the end of
// the 10,000-point chart, ~634 after 100,000 points, and is still not full
// (986 points) after the entire 494,021-point stream.
func Fig1(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nmax := cfg.scaled(1000, 25)
	lambda := 0.01 / float64(nmax) // keeps p_in = 0.01 at every scale
	chartLen := 10 * nmax
	midCheck := 100 * nmax
	total := cfg.scaled(int(stream.KDD99Size), 20*nmax)
	if midCheck > total {
		midCheck = total
	}

	gen, err := stream.NewIntrusionGenerator(stream.IntrusionConfig{Total: uint64(total), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed + 1)
	variable, err := core.NewVariableReservoir(lambda, nmax, rng.Split())
	if err != nil {
		return nil, err
	}
	fixed, err := core.NewConstrainedReservoir(lambda, nmax, rng.Split())
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "fig1",
		Title:  "Fractional reservoir utilization, variable vs fixed reservoir sampling (intrusion stream)",
		XLabel: "points",
		YLabel: "fraction of reservoir filled",
	}
	checkEvery := chartLen / 40
	if checkEvery < 1 {
		checkEvery = 1
	}
	for i := 1; i <= total; i++ {
		p, ok := gen.Next()
		if !ok {
			break
		}
		variable.Add(p)
		fixed.Add(p)
		if i <= chartLen && i%checkEvery == 0 {
			res.AddPoint("variable", float64(i), core.Fill(variable))
			res.AddPoint("fixed", float64(i), core.Fill(fixed))
		}
		if i == midCheck {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"at %d points: variable %d/%d, fixed %d/%d (paper: fixed ~634/1000 at 100k)",
				i, variable.Len(), nmax, fixed.Len(), nmax))
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"end of stream (%d points): variable %d/%d, fixed %d/%d (paper: fixed 986/1000 after 494021)",
		total, variable.Len(), nmax, fixed.Len(), nmax))
	res.Notes = append(res.Notes, fmt.Sprintf(
		"parameters: n_max=%d λ=%.3g p_in=%.3g; variable ran %d reduction phases, final p_in=%.4g",
		nmax, lambda, float64(nmax)*lambda, variable.Phases(), variable.PIn()))
	return res, nil
}
