package experiments

import (
	"fmt"

	"biasedres/internal/core"
	"biasedres/internal/models"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

// ExtModels runs the model-management subsystem (internal/models) over
// three sampler families on one concept-drifting stream and compares how
// quickly each recovers classification accuracy after the shift:
//
//	variable  the paper's Aggarwal reservoir (approximate decay)
//	ttbs      targeted time-biased sampling (exact decay, unbounded size)
//	rtbs      reservoir-based time-biased sampling (exact decay, bounded)
//
// All three run the identical model configuration — same drift detector,
// same retrain policy — so any difference is the sampler's: after a
// drift-triggered retrain the model can only be as fresh as the sample it
// retrains from, and a sampler whose reservoir skews recent (smaller mean
// training-point age) hands the classifier a training set with fewer
// stale-regime points. The plot is per-window prequential accuracy (the
// fraction of the window's labeled points classified correctly, from
// deltas of the cumulative counts) against stream progression — the shift
// window shows the dip, its successors the recovery; the notes record
// each policy's mean training-set age and retrain counts.
func ExtModels(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const dim = 2
	n := cfg.scaled(400, 60)
	// T-TBS caps the target at 1/(1-e^{-λ}); λ = 1/n keeps n·q just under 1
	// and is simultaneously a valid Aggarwal bias rate (p_in = n·λ ≤ 1).
	lambda := 1 / float64(n)
	total := uint64(cfg.scaled(40000, 5000))
	const windows = 10
	// One regime shift halfway through; the label is the regime number, so
	// a model trained on the old regime misclassifies everything after the
	// shift until it retrains.
	gen0, err := stream.NewRegimeGenerator(dim, total/2, 2.0, 0.5, total, true, cfg.Seed+79)
	if err != nil {
		return nil, err
	}

	mcfg := models.Config{
		Dim: dim, ShortH: 100, LongH: 1500,
		Threshold: 4, CheckEvery: 50, MinGap: 200, Window: 100,
	}
	rng := xrand.New(cfg.Seed + 83)
	type policy struct {
		name    string
		sampler core.Sampler
		model   *models.Model
	}
	va, err := core.NewVariableReservoir(lambda, n, rng.Split())
	if err != nil {
		return nil, err
	}
	tt, err := core.NewTTBSReservoir(lambda, n, rng.Split())
	if err != nil {
		return nil, err
	}
	rt, err := core.NewRTBSReservoir(lambda, n, rng.Split())
	if err != nil {
		return nil, err
	}
	policies := []*policy{{name: "variable", sampler: va}, {name: "ttbs", sampler: tt}, {name: "rtbs", sampler: rt}}
	for _, p := range policies {
		m, err := models.New(mcfg)
		if err != nil {
			return nil, err
		}
		p.model = m
	}

	res := &Result{
		ID: "extmodels",
		Title: fmt.Sprintf(
			"Model management over Aggarwal vs T-TBS vs R-TBS: accuracy recovery after a regime shift (reservoir %d, λ=%.3g)", n, lambda),
		XLabel: "progression of stream (points)",
		YLabel: "per-window prequential accuracy",
	}

	pts := stream.Collect(gen0, 0)
	if len(pts) == 0 {
		return nil, fmt.Errorf("experiments: extmodels: empty stream")
	}
	windowLen := len(pts) / windows
	if windowLen < 1 {
		windowLen = 1
	}
	const batch = 50
	ageSum := make(map[string]float64, len(policies))
	// Per-window accuracy from deltas of the cumulative counts: the model's
	// own rolling window (mcfg.Window points) is too short to register the
	// shift at these sampling boundaries — a fast retrain heals it between
	// samples — while the delta covers every point of the window.
	prevScored := make(map[string]uint64, len(policies))
	prevCorrect := make(map[string]float64, len(policies))
	ageN := 0
	for off := 0; off < len(pts); off += batch {
		end := off + batch
		if end > len(pts) {
			end = len(pts)
		}
		chunk := pts[off:end]
		// Apply-then-observe, matching the server's ingest hook: the batch
		// enters the sampler first, then the model scores it and a due
		// drift check or retrain sees a snapshot that includes it.
		for _, p := range policies {
			s := p.sampler
			core.AddBatch(s, chunk)
			p.model.ObserveBatch(chunk, func() *core.Snapshot { return core.BuildSnapshot(s) })
		}
		if end/windowLen > off/windowLen || end == len(pts) {
			ageN++
			for _, p := range policies {
				st := p.model.Stats()
				correct := st.Accuracy * float64(st.Scored)
				if d := st.Scored - prevScored[p.name]; d > 0 {
					res.AddPoint(p.name, float64(end), (correct-prevCorrect[p.name])/float64(d))
				}
				prevScored[p.name] = st.Scored
				prevCorrect[p.name] = correct
				ageSum[p.name] += st.TrainAge
			}
		}
	}
	for _, p := range policies {
		st := p.model.Stats()
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: mean train age %.0f points, final accuracy %.3f, retrains %d (drift %d), final train size %d",
			p.name, ageSum[p.name]/float64(ageN), st.Accuracy, st.Retrains, st.DriftFired, st.TrainSize))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"parameters: reservoir=%d λ=%.3g stream=%d shift@%d model{short_h=%d long_h=%d threshold=%.1f}",
		n, lambda, len(pts), total/2, mcfg.ShortH, mcfg.LongH, mcfg.Threshold))
	return res, nil
}
