package experiments

import (
	"fmt"
	"math"

	"biasedres/internal/core"
	"biasedres/internal/query"
	"biasedres/internal/stats"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

// The query-accuracy experiments (Figures 2-5) share one protocol: run a
// stream to its end past a biased reservoir, an unbiased reservoir of the
// same size and an exact ground-truth horizon buffer, then evaluate a
// query at a sweep of user-defined horizons and report each scheme's error.
//
// Paper parameters: reservoir of 1000 points, λ = 10⁻⁴, so the biased
// scheme runs Algorithm 3.1 with p_in = n·λ = 0.1.

// horizonEval computes one scheme's error at one horizon. A scheme that
// cannot answer (no relevant sample points) must fold that failure into its
// error — the paper's "null or wildly inaccurate result".
type horizonEval func(s core.Sampler, truth *query.Truth, h uint64) (float64, error)

// sweepSpec parameterizes one horizon-sweep experiment.
type sweepSpec struct {
	id, title string
	yLabel    string
	mkStream  func(seed uint64) (stream.Stream, error)
	horizons  []int
	eval      horizonEval
	trials    int
	reservoir int
	lambda    float64
}

// runHorizonSweep executes the shared protocol and averages errors across
// trials.
func runHorizonSweep(cfg Config, spec sweepSpec) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	maxH := 0
	for _, h := range spec.horizons {
		if h > maxH {
			maxH = h
		}
	}
	if maxH == 0 {
		return nil, fmt.Errorf("experiments: %s has no horizons", spec.id)
	}
	trials := cfg.trials(spec.trials)
	rng := xrand.New(cfg.Seed + 17)

	errB := make([]float64, len(spec.horizons))
	errU := make([]float64, len(spec.horizons))
	for trial := 0; trial < trials; trial++ {
		src, err := spec.mkStream(cfg.Seed + uint64(trial)*101)
		if err != nil {
			return nil, err
		}
		truth, err := query.NewTruth(maxH)
		if err != nil {
			return nil, err
		}
		biased, err := core.NewConstrainedReservoir(spec.lambda, spec.reservoir, rng.Split())
		if err != nil {
			return nil, err
		}
		unbiased, err := core.NewUnbiasedReservoir(spec.reservoir, rng.Split())
		if err != nil {
			return nil, err
		}
		for {
			p, ok := src.Next()
			if !ok {
				break
			}
			truth.Observe(p)
			biased.Add(p)
			unbiased.Add(p)
		}
		for i, h := range spec.horizons {
			eb, err := spec.eval(biased, truth, uint64(h))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s biased h=%d: %w", spec.id, h, err)
			}
			eu, err := spec.eval(unbiased, truth, uint64(h))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s unbiased h=%d: %w", spec.id, h, err)
			}
			errB[i] += eb
			errU[i] += eu
		}
	}
	res := &Result{
		ID:     spec.id,
		Title:  spec.title,
		XLabel: "user horizon",
		YLabel: spec.yLabel,
	}
	for i, h := range spec.horizons {
		res.AddPoint("biased", float64(h), errB[i]/float64(trials))
		res.AddPoint("unbiased", float64(h), errU[i]/float64(trials))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"parameters: reservoir=%d λ=%.3g p_in=%.3g trials=%d",
		spec.reservoir, spec.lambda, float64(spec.reservoir)*spec.lambda, trials))
	return res, nil
}

// queryParams derives the paper's reservoir size and bias rate at the
// configured scale, preserving p_in = 0.1.
func queryParams(cfg Config) (reservoir int, lambda float64) {
	reservoir = cfg.scaled(1000, 50)
	lambda = 0.1 / float64(reservoir)
	return reservoir, lambda
}

// horizonGrid returns the paper's horizon sweep 2000, 4000, ..., 20000,
// scaled.
func horizonGrid(cfg Config) []int {
	out := make([]int, 0, 10)
	for i := 1; i <= 10; i++ {
		out = append(out, cfg.scaled(2000*i, 20*i))
	}
	return out
}

// averageEval is the sum-query error of Figures 2/3: the mean absolute
// error, across dimensions, of the estimated per-dimension average of the
// last h arrivals. A scheme with no relevant sample answers zero — the
// paper's null result.
func averageEval(dim int) horizonEval {
	return func(s core.Sampler, truth *query.Truth, h uint64) (float64, error) {
		exact, err := truth.Average(h, dim)
		if err != nil {
			return 0, err
		}
		est, estErr := query.HorizonAverage(s, h, dim)
		if estErr != nil {
			est = make([]float64, dim) // null result
		}
		return stats.MeanAbsError(est, exact)
	}
}

// classDistEval is Figure 4's error: Equation 21 over the class
// distribution of the last h arrivals.
func classDistEval() horizonEval {
	return func(s core.Sampler, truth *query.Truth, h uint64) (float64, error) {
		exact, err := truth.ClassDistribution(h)
		if err != nil {
			return 0, err
		}
		est, estErr := query.ClassDistribution(s, h)
		if estErr != nil {
			est = map[int]float64{} // null result
		}
		return stats.ClassDistributionError(exact, est)
	}
}

// selectivityEval is Figure 5's error: absolute error of the estimated
// range selectivity.
func selectivityEval(rect query.Rect) horizonEval {
	return func(s core.Sampler, truth *query.Truth, h uint64) (float64, error) {
		exact, err := truth.RangeSelectivity(h, rect)
		if err != nil {
			return 0, err
		}
		est, estErr := query.RangeSelectivity(s, h, rect)
		if estErr != nil {
			est = 0 // null result
		}
		return math.Abs(est - exact), nil
	}
}
