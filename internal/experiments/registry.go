package experiments

import (
	"fmt"
	"sort"
)

// Driver regenerates one figure of the paper at the given configuration.
type Driver func(Config) (*Result, error)

// registry maps figure ids to drivers.
var registry = map[string]Driver{
	"fig1": Fig1,
	"fig2": Fig2,
	"fig3": Fig3,
	"fig4": Fig4,
	"fig5": Fig5,
	"fig6": Fig6,
	"fig7": Fig7,
	"fig8": Fig8,
	"fig9": Fig9,
}

// IDs returns all figure identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the driver for a figure id.
func Lookup(id string) (Driver, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, IDs())
	}
	return d, nil
}

// Run executes one figure driver by id.
func Run(id string, cfg Config) (*Result, error) {
	d, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return d(cfg)
}
