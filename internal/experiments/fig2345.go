package experiments

import (
	"biasedres/internal/query"
	"biasedres/internal/stream"
)

// intrusionStream builds the network-intrusion workload at the configured
// scale.
func intrusionStream(cfg Config) func(seed uint64) (stream.Stream, error) {
	total := cfg.scaled(int(stream.KDD99Size), 5000)
	return func(seed uint64) (stream.Stream, error) {
		return stream.NewIntrusionGenerator(stream.IntrusionConfig{Total: uint64(total), Seed: seed})
	}
}

// clusterStream builds the synthetic evolving-cluster workload at the
// configured scale.
func clusterStream(cfg Config) func(seed uint64) (stream.Stream, error) {
	ccfg := stream.DefaultClusterConfig()
	ccfg.Total = uint64(cfg.scaled(400000, 5000))
	return func(seed uint64) (stream.Stream, error) {
		c := ccfg
		c.Seed = seed
		return stream.NewClusterGenerator(c)
	}
}

// Fig2 reproduces Figure 2: sum-query estimation accuracy versus
// user-defined horizon on the network-intrusion stream. The query is the
// per-dimension average over the last h arrivals; the error is the mean
// absolute error across dimensions. Biased and unbiased reservoirs have
// identical size (paper: 1000 points, λ = 10⁻⁴).
func Fig2(cfg Config) (*Result, error) {
	n, lambda := queryParams(cfg)
	return runHorizonSweep(cfg, sweepSpec{
		id:        "fig2",
		title:     "Sum query estimation accuracy vs user-defined horizon (network intrusion)",
		yLabel:    "absolute error",
		mkStream:  intrusionStream(cfg),
		horizons:  horizonGrid(cfg),
		eval:      averageEval(34),
		trials:    3,
		reservoir: n,
		lambda:    lambda,
	})
}

// Fig3 reproduces Figure 3: the same sum-query sweep on the synthetic
// evolving-cluster stream.
func Fig3(cfg Config) (*Result, error) {
	n, lambda := queryParams(cfg)
	return runHorizonSweep(cfg, sweepSpec{
		id:        "fig3",
		title:     "Sum query estimation accuracy vs user-defined horizon (synthetic)",
		yLabel:    "absolute error",
		mkStream:  clusterStream(cfg),
		horizons:  horizonGrid(cfg),
		eval:      averageEval(10),
		trials:    3,
		reservoir: n,
		lambda:    lambda,
	})
}

// Fig4 reproduces Figure 4: count-query (fractional class distribution)
// estimation accuracy versus horizon on the network-intrusion stream, with
// the paper's Equation 21 error over classes.
func Fig4(cfg Config) (*Result, error) {
	n, lambda := queryParams(cfg)
	return runHorizonSweep(cfg, sweepSpec{
		id:        "fig4",
		title:     "Count query (class distribution) estimation accuracy vs user-defined horizon (network intrusion)",
		yLabel:    "absolute error (eq. 21)",
		mkStream:  intrusionStream(cfg),
		horizons:  horizonGrid(cfg),
		eval:      classDistEval(),
		trials:    3,
		reservoir: n,
		lambda:    lambda,
	})
}

// Fig5 reproduces Figure 5: range-selectivity estimation accuracy versus
// horizon on the synthetic stream. The predicate fixes two dimensions to a
// sub-range of the unit cube, as in the paper's "predefined set of
// dimensions ... user defined range".
func Fig5(cfg Config) (*Result, error) {
	rect, err := query.NewRect([]int{0, 1}, []float64{0.2, 0.2}, []float64{0.8, 0.8})
	if err != nil {
		return nil, err
	}
	n, lambda := queryParams(cfg)
	return runHorizonSweep(cfg, sweepSpec{
		id:        "fig5",
		title:     "Range selectivity estimation accuracy vs user-defined horizon (synthetic)",
		yLabel:    "absolute error",
		mkStream:  clusterStream(cfg),
		horizons:  horizonGrid(cfg),
		eval:      selectivityEval(rect),
		trials:    3,
		reservoir: n,
		lambda:    lambda,
	})
}
