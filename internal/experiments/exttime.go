package experiments

import (
	"fmt"
	"math"

	"biasedres/internal/core"
	"biasedres/internal/query"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

// ExtTime evaluates the wall-clock time-decay extension: when arrivals are
// irregular (bursts and lulls) and the analyst's horizon is expressed in
// *time* ("the last Δ seconds"), an arrival-indexed biased reservoir must
// translate the horizon through the average rate and is systematically
// wrong inside bursts and lulls, while the TimeDecayReservoir answers the
// time horizon directly.
//
// Workload: points arrive in alternating fast (rate 10/s) and slow
// (rate 0.5/s) phases; each point's value is its phase mean plus noise, so
// the recent-time average swings between phases. At checkpoints we ask for
// the mean over the last Δ = 60 s and compare three estimates against the
// exact answer: the time-decay reservoir, the arrival-indexed variable
// reservoir with the horizon converted via the average rate, and the same
// reservoir with the horizon converted via the *current* phase rate (the
// best an index-based scheme could plausibly do online).
func ExtTime(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	const (
		fastRate   = 20.0
		slowRate   = 0.2
		phaseLen   = 300.0 // seconds per phase
		horizonSec = 60.0
	)
	capacity := cfg.scaled(500, 50)
	// λ per second, tuned to the time horizon.
	lambdaSec := 1.0 / horizonSec
	phases := cfg.scaled(20, 6)
	trials := cfg.trials(3)

	avgRate := (fastRate + slowRate) / 2
	// Arrival-indexed reservoir tuned to the equivalent mean arrival
	// count for the time horizon.
	hIndexAvg := uint64(horizonSec * avgRate)
	lambdaIdx := 1.0 / float64(hIndexAvg)
	if lambdaIdx*float64(capacity) > 1 {
		lambdaIdx = 1.0 / float64(capacity)
	}
	lambdaTD := lambdaSec
	if lambdaTD*float64(capacity) > 1 { // time-decay capacity feasibility is rate-dependent; keep sane
		lambdaTD = 1.0 / float64(capacity)
	}

	res := &Result{
		ID: "exttime",
		Title: fmt.Sprintf(
			"Time-horizon queries under bursty arrivals: time-decay vs arrival-indexed reservoirs (Δ=%.0fs)", horizonSec),
		XLabel: "checkpoint (phase index)",
		YLabel: "absolute error of last-Δ mean",
	}

	rng := xrand.New(cfg.Seed + 79)
	nCheck := phases
	errTD := make([]float64, nCheck)
	errAvg := make([]float64, nCheck)
	errCur := make([]float64, nCheck)
	for trial := 0; trial < trials; trial++ {
		gen := rng.Split()
		td, err := core.NewTimeDecayReservoir(lambdaTD, capacity, rng.Split())
		if err != nil {
			return nil, err
		}
		idx, err := core.NewVariableReservoir(lambdaIdx, capacity, rng.Split())
		if err != nil {
			return nil, err
		}
		// Full history for exact time-window truth (test scale).
		type rec struct {
			ts, v float64
		}
		var hist []rec

		now := 0.0
		var index uint64
		for phase := 0; phase < phases; phase++ {
			rate, mean := fastRate, 1.0
			if phase%2 == 1 {
				rate, mean = slowRate, -1.0
			}
			end := now + phaseLen
			for now < end {
				now += gen.ExpFloat64() / rate
				if now >= end {
					break
				}
				index++
				v := mean + gen.NormFloat64()*0.5
				p := stream.Point{Index: index, Values: []float64{v}, Weight: 1}
				if err := td.AddAt(p, now); err != nil {
					return nil, err
				}
				idx.Add(p)
				hist = append(hist, rec{ts: now, v: v})
			}
			// Checkpoint at the end of each phase.
			var exactSum float64
			var exactN int
			for i := len(hist) - 1; i >= 0 && hist[i].ts > now-horizonSec; i-- {
				exactSum += hist[i].v
				exactN++
			}
			if exactN == 0 {
				continue
			}
			exact := exactSum / float64(exactN)

			if est, ok := timeDecayMean(td, now, horizonSec); ok {
				errTD[phase] += math.Abs(est - exact)
			} else {
				errTD[phase] += math.Abs(exact)
			}
			errAvg[phase] += idxMeanErr(idx, hIndexAvg, exact)
			hCur := uint64(horizonSec * rate)
			if hCur == 0 {
				hCur = 1
			}
			errCur[phase] += idxMeanErr(idx, hCur, exact)
		}
	}
	for i := 0; i < nCheck; i++ {
		res.AddPoint("time-decay", float64(i+1), errTD[i]/float64(trials))
		res.AddPoint("index-avgrate", float64(i+1), errAvg[i]/float64(trials))
		res.AddPoint("index-currate", float64(i+1), errCur[i]/float64(trials))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"parameters: capacity=%d λ_time=%.3g/s λ_index=%.3g rates=%g/%g per s phase=%.0fs trials=%d",
		capacity, lambdaTD, lambdaIdx, fastRate, slowRate, phaseLen, trials))
	res.Notes = append(res.Notes,
		"index-avgrate converts Δ to arrivals via the long-run average rate; index-currate via the current phase rate")
	return res, nil
}

// timeDecayMean estimates the mean value over the last Δ time units from a
// time-decay reservoir via Horvitz-Thompson weighting of its residents.
func timeDecayMean(td *core.TimeDecayReservoir, now, delta float64) (float64, bool) {
	var num, den float64
	for _, r := range td.Residents() {
		if now-r.TS >= delta {
			continue
		}
		p := td.InclusionProb(r.P.Index)
		if p <= 0 {
			continue
		}
		w := 1 / p
		num += w * r.P.Values[0]
		den += w
	}
	if den <= 0 {
		return 0, false
	}
	return num / den, true
}

// idxMeanErr evaluates an arrival-horizon mean estimate against the exact
// time-window answer, treating "no mass" as a zero estimate.
func idxMeanErr(s core.Sampler, h uint64, exact float64) float64 {
	est, err := query.HorizonAverage(s, h, 1)
	if err != nil {
		return math.Abs(exact)
	}
	return math.Abs(est[0] - exact)
}
