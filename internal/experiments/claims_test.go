package experiments

import "testing"

func TestClaimsRegisteredForEveryExperiment(t *testing.T) {
	for _, id := range append(IDs(), ExtIDs()...) {
		if _, ok := claims[id]; !ok {
			t.Errorf("no claims registered for %q", id)
		}
	}
	if _, err := CheckClaims("nope", &Result{}); err == nil {
		t.Error("unknown id accepted")
	}
}

// Each figure's claims must PASS on its own regenerated result — the
// executable form of "the reproduction holds".
func TestClaimsHoldAtTestScale(t *testing.T) {
	cases := []struct {
		id    string
		run   func(string, Config) (*Result, error)
		scale float64
	}{
		{"fig1", Run, 0.05},
		{"fig2", Run, 0.05},
		{"fig3", Run, 0.05},
		{"fig4", Run, 0.05},
		{"fig5", Run, 0.05},
		{"fig6", Run, 0.05},
		{"fig7", Run, 0.1},
		{"fig8", Run, 0.1},
		{"fig9", Run, 0.1},
		{"extlambda", RunExt, 0.08},
		{"extwindow", RunExt, 0.08},
		{"exttime", RunExt, 0.5},
		{"extmodels", RunExt, 0.5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			res, err := tc.run(tc.id, Config{Scale: tc.scale, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			outcomes, err := CheckClaims(tc.id, res)
			if err != nil {
				t.Fatal(err)
			}
			if len(outcomes) == 0 {
				t.Fatal("no outcomes")
			}
			for _, o := range outcomes {
				if !o.OK {
					t.Errorf("claim failed: %s", o.Text)
				}
			}
		})
	}
}

func TestLastHelper(t *testing.T) {
	if last(nil) != 0 {
		t.Error("last(nil) != 0")
	}
	if last([]float64{1, 2, 3}) != 3 {
		t.Error("last wrong")
	}
}
