package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func testCfg(scale float64) Config {
	return Config{Scale: scale, Seed: 7}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		if _, err := Fig1(Config{Scale: bad}); err == nil {
			t.Errorf("scale %v accepted", bad)
		}
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 9 {
		t.Fatalf("registry has %d figures, want 9", len(ids))
	}
	for i, id := range ids {
		want := "fig" + string(rune('1'+i))
		if id != want {
			t.Fatalf("ids[%d] = %q, want %q", i, id, want)
		}
		if _, err := Lookup(id); err != nil {
			t.Fatalf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := Run("fig99", DefaultConfig()); err == nil {
		t.Fatal("Run of unknown figure accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "x", Title: "t", XLabel: "x", YLabel: "y"}
	r.AddPoint("a", 1, 2)
	r.AddPoint("a", 3, 4)
	r.AddPoint("b", 1, 5)
	s, ok := r.Get("a")
	if !ok || len(s.X) != 2 || s.Y[1] != 4 {
		t.Fatalf("series a = %+v, ok=%v", s, ok)
	}
	if _, ok := r.Get("zzz"); ok {
		t.Fatal("missing series found")
	}
	var buf bytes.Buffer
	r.Notes = append(r.Notes, "a note")
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a note", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// Figure 1 shape: variable sampling fills the reservoir almost immediately;
// fixed sampling is far from full at the end of the chart.
func TestFig1Shape(t *testing.T) {
	res, err := Fig1(testCfg(0.05))
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Get("variable")
	if !ok || len(v.Y) == 0 {
		t.Fatal("missing variable series")
	}
	f, ok := res.Get("fixed")
	if !ok || len(f.Y) != len(v.Y) {
		t.Fatal("missing or misaligned fixed series")
	}
	if last := v.Y[len(v.Y)-1]; last < 0.95 {
		t.Errorf("variable fill at chart end = %v, want ~1", last)
	}
	if last := f.Y[len(f.Y)-1]; last > 0.5 {
		t.Errorf("fixed fill at chart end = %v, expected far from full", last)
	}
	// Variable dominates fixed at every checkpoint.
	for i := range v.Y {
		if v.Y[i]+1e-9 < f.Y[i] {
			t.Errorf("checkpoint %d: variable %v below fixed %v", i, v.Y[i], f.Y[i])
		}
	}
	if len(res.Notes) < 2 {
		t.Error("fig1 notes missing")
	}
}

// Shared shape of Figures 2-5: at the smallest horizon the biased scheme's
// error is (much) lower than the unbiased scheme's.
func checkHorizonShape(t *testing.T, res *Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	b, ok := res.Get("biased")
	if !ok {
		t.Fatal("missing biased series")
	}
	u, ok := res.Get("unbiased")
	if !ok {
		t.Fatal("missing unbiased series")
	}
	if len(b.Y) != len(u.Y) || len(b.Y) < 5 {
		t.Fatalf("series lengths %d/%d", len(b.Y), len(u.Y))
	}
	if b.Y[0] >= u.Y[0] {
		t.Errorf("smallest horizon: biased error %v not below unbiased %v", b.Y[0], u.Y[0])
	}
	// Average over the smaller half of the horizons — the critical case.
	half := len(b.Y) / 2
	if mb, mu := mean(b.Y[:half]), mean(u.Y[:half]); mb >= mu {
		t.Errorf("small horizons: biased mean error %v not below unbiased %v", mb, mu)
	}
	for i, y := range b.Y {
		if y < 0 {
			t.Errorf("negative error at %d: %v", i, y)
		}
	}
}

func TestFig2Shape(t *testing.T) { res, err := Fig2(testCfg(0.05)); checkHorizonShape(t, res, err) }
func TestFig3Shape(t *testing.T) { res, err := Fig3(testCfg(0.05)); checkHorizonShape(t, res, err) }
func TestFig4Shape(t *testing.T) { res, err := Fig4(testCfg(0.05)); checkHorizonShape(t, res, err) }
func TestFig5Shape(t *testing.T) { res, err := Fig5(testCfg(0.05)); checkHorizonShape(t, res, err) }

// Figure 6 shape: with stream progression at fixed horizon, the unbiased
// error deteriorates relative to the biased error.
func TestFig6Shape(t *testing.T) {
	res, err := Fig6(testCfg(0.05))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := res.Get("biased")
	u, _ := res.Get("unbiased")
	if len(b.Y) < 4 || len(u.Y) != len(b.Y) {
		t.Fatalf("series lengths %d/%d", len(b.Y), len(u.Y))
	}
	last := len(b.Y) - 1
	if b.Y[last] >= u.Y[last] {
		t.Errorf("at end of stream: biased error %v not below unbiased %v", b.Y[last], u.Y[last])
	}
	// Unbiased late-stream error above its early-stream error (deterioration),
	// compared on halves to smooth noise.
	half := len(u.Y) / 2
	if early, late := mean(u.Y[:half]), mean(u.Y[half:]); late <= early {
		t.Logf("note: unbiased error early %v late %v (deterioration expected at full scale)", early, late)
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(testCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	checkAccuracySeries(t, res, false)
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(testCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	checkAccuracySeries(t, res, true)
}

func checkAccuracySeries(t *testing.T, res *Result, strict bool) {
	t.Helper()
	b, ok := res.Get("biased")
	if !ok || len(b.Y) < 5 {
		t.Fatalf("biased accuracy series missing or short: %v", b.Y)
	}
	u, ok := res.Get("unbiased")
	if !ok || len(u.Y) != len(b.Y) {
		t.Fatalf("unbiased accuracy series missing or misaligned")
	}
	for i := range b.Y {
		if b.Y[i] < 0 || b.Y[i] > 1 || u.Y[i] < 0 || u.Y[i] > 1 {
			t.Fatalf("accuracy out of range at %d: %v / %v", i, b.Y[i], u.Y[i])
		}
	}
	mb, mu := mean(b.Y), mean(u.Y)
	t.Logf("mean accuracy: biased %.4f unbiased %.4f", mb, mu)
	if strict && mb <= mu {
		t.Errorf("biased mean accuracy %v not above unbiased %v", mb, mu)
	}
}

// Figure 9 shape: the unbiased reservoir mixes classes more than the biased
// one by the end of the stream, and the biased reservoir tracks the growing
// centroid spread at least as well.
func TestFig9Shape(t *testing.T) {
	res, err := Fig9(testCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := res.Get("mixing-biased")
	mu, _ := res.Get("mixing-unbiased")
	if len(mb.Y) != 3 || len(mu.Y) != 3 {
		t.Fatalf("mixing series lengths %d/%d, want 3 checkpoints", len(mb.Y), len(mu.Y))
	}
	if mb.Y[2] >= mu.Y[2] {
		t.Errorf("final mixing: biased %v not below unbiased %v", mb.Y[2], mu.Y[2])
	}
	sb, _ := res.Get("spread-biased")
	su, _ := res.Get("spread-unbiased")
	if sb.Y[2] < su.Y[2] {
		t.Errorf("final spread: biased %v below unbiased %v (biased should track drift)", sb.Y[2], su.Y[2])
	}
	// The notes must contain the six scatter plots.
	plots := 0
	for _, n := range res.Notes {
		if strings.Contains(n, "reservoir at t=") {
			plots++
		}
	}
	if plots != 6 {
		t.Errorf("expected 6 scatter plots in notes, found %d", plots)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in long mode only")
	}
	for _, id := range IDs() {
		res, err := Run(id, testCfg(0.03))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", id)
		}
	}
}
