// Package durable is the crash-safe persistence layer of the reservoir
// service: per-stream checkpoint files plus an append-only ops journal,
// written so that a process killed at any instant recovers to a valid
// sampler state on restart. The paper's samplers are compressed histories
// of an unbounded stream — unlike a counter, a lost reservoir cannot be
// rebuilt from the live stream — so the service must be able to restart
// without forgetting its past (the setting Hentschel, Haas & Tian's
// "Temporally-Biased Sampling Schemes for Online Model Management"
// motivates for long-lived decayed samples feeding downstream models).
//
// On disk, each stream owns a short chain of files inside one data
// directory (stream names are path-escaped):
//
//	st-<name>.<seq>.ckpt     checkpoint: header + CRC32-guarded gob payload
//	st-<name>.<seq>.journal  ops appended since checkpoint <seq> was cut
//	quarantine/              corrupt files moved aside during recovery
//
// Checkpoints are written via temp file + fsync + atomic rename, so a
// crash mid-write leaves either the old chain or the new one, never a torn
// file. Journals are append-only with a per-record length + CRC32 frame;
// fsyncs are coalesced by the caller's sync loop, bounding loss after a
// hard kill to the coalescing window. Recovery loads the newest checkpoint
// whose checksum verifies, replays every journal at or above it, and
// quarantines (never deletes, never crashes on) anything corrupt.
//
// All file operations go through the FS interface so tests can inject
// failing writes, failed fsyncs and crashes at arbitrary points (see
// MemFS) and prove the recovery invariants under -race.
package durable

import (
	"io"
	"os"
	"path/filepath"
)

// File is the writable handle the durability layer needs: sequential
// writes, durability on demand, release.
type File interface {
	io.Writer
	// Sync flushes the file's written data to stable storage.
	Sync() error
	Close() error
}

// FS abstracts the handful of filesystem operations checkpointing and
// journaling perform. The production implementation is OSFS; MemFS is the
// fault-injecting in-memory implementation the recovery tests crash at
// every reachable point.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (io.ReadCloser, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path; removing a missing file is not an error.
	Remove(path string) error
	// ReadDir lists the names (not paths) of the entries in dir; a
	// missing dir yields an empty listing.
	ReadDir(dir string) ([]string, error)
	// SyncDir makes directory mutations (renames, creates, removes)
	// under dir durable.
	SyncDir(dir string) error
}

// OSFS is the production FS backed by the operating system.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Open implements FS.
func (OSFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error {
	err := os.Remove(path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// SyncDir implements FS: fsync on the directory makes the renames and
// creates inside it durable (the step after the checkpoint's atomic
// rename that actually pins it to disk).
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
