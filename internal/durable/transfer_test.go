package durable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"biasedres/internal/stream"
)

// randTransfer builds a pseudo-random but deterministic transfer: a
// checkpoint with an opaque snapshot plus a journal tail, the shape a
// drain ships between nodes.
func randTransfer(rng *rand.Rand) Transfer {
	snap := make([]byte, 64+rng.Intn(512))
	rng.Read(snap)
	t := Transfer{
		Checkpoint: Checkpoint{
			Seq: uint64(rng.Intn(100) + 1),
			Meta: StreamMeta{
				Name:     fmt.Sprintf("s%d", rng.Intn(10)),
				Policy:   "variable",
				Lambda:   rng.Float64() / 100,
				Capacity: rng.Intn(1000) + 1,
			},
			Next:     uint64(rng.Intn(10000)),
			Dim:      rng.Intn(4) + 1,
			Snapshot: snap,
		},
	}
	for r := rng.Intn(5); r > 0; r-- {
		var rec Record
		for o := rng.Intn(8) + 1; o > 0; o-- {
			rec.Ops = append(rec.Ops, Op{
				P: stream.Point{
					Index:  uint64(rng.Intn(10000)),
					Values: []float64{rng.Float64(), rng.Float64()},
					Label:  rng.Intn(3) - 1,
					Weight: 1,
				},
				TS:    rng.Float64() * 100,
				HasTS: rng.Intn(2) == 0,
			})
		}
		t.Tail = append(t.Tail, rec)
	}
	return t
}

// equalTransfers compares two transfers field by field via re-encoding:
// gob encoding is deterministic for identical values, so byte equality of
// the encodings is value equality of the transfers.
func equalTransfers(t *testing.T, a, b Transfer) bool {
	t.Helper()
	ab, err := EncodeTransfer(a)
	if err != nil {
		t.Fatalf("re-encoding a: %v", err)
	}
	bb, err := EncodeTransfer(b)
	if err != nil {
		t.Fatalf("re-encoding b: %v", err)
	}
	return bytes.Equal(ab, bb)
}

func TestTransferRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		src := randTransfer(rng)
		blob, err := EncodeTransfer(src)
		if err != nil {
			t.Fatalf("iter %d: encode: %v", i, err)
		}
		got, err := DecodeTransfer(blob)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if !equalTransfers(t, src, got) {
			t.Fatalf("iter %d: round trip changed the transfer", i)
		}
		if !bytes.Equal(got.Checkpoint.Snapshot, src.Checkpoint.Snapshot) {
			t.Fatalf("iter %d: snapshot bytes differ after round trip", i)
		}
	}
}

// TestTransferCorruptionDetected flips/truncates every region of the blob
// and demands a clean IsCorrupt error — a transfer damaged in flight must
// never install.
func TestTransferCorruptionDetected(t *testing.T) {
	src := randTransfer(rand.New(rand.NewSource(11)))
	blob, err := EncodeTransfer(src)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Truncations at every boundary class.
	for _, n := range []int{0, 7, 19, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeTransfer(blob[:n]); err == nil || !IsCorrupt(err) {
			t.Fatalf("truncation to %d bytes: err = %v, want IsCorrupt", n, err)
		}
	}
	// Single-byte flips across magic, CRC, length and payload.
	for _, idx := range []int{0, 9, 15, 25, len(blob) - 1} {
		mut := append([]byte(nil), blob...)
		mut[idx] ^= 0xff
		if _, err := DecodeTransfer(mut); err == nil || !IsCorrupt(err) {
			t.Fatalf("flip at %d: err = %v, want IsCorrupt", idx, err)
		}
	}
}

// TestTransferFaultSweep is the satellite property test: sweep an
// injected I/O failure across every mutating operation of the transfer
// write path and demand that each outcome is safe — either the write
// reports an error (and any readable file decodes to the OLD durable
// content or nothing), or it succeeds and the file decodes byte-identical
// to the source. A crash at the same point must never leave a readable
// file with torn content.
func TestTransferFaultSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	old := randTransfer(rng)
	next := randTransfer(rng)
	const path = "data/stream.xfr"

	// Baseline: how many mutating ops does one write take?
	probe := NewMemFS()
	probe.MkdirAll("data")
	if err := WriteTransfer(probe, path, next); err != nil {
		t.Fatalf("baseline write: %v", err)
	}
	totalOps := 0
	for probeOps := 1; ; probeOps++ {
		fs := NewMemFS()
		fs.MkdirAll("data")
		fs.FailAt(probeOps)
		if err := WriteTransfer(fs, path, next); err == nil {
			totalOps = probeOps - 1
			break
		}
	}
	if totalOps < 3 {
		t.Fatalf("transfer write took %d mutating ops; expected at least create+write+sync", totalOps)
	}

	for mode := 0; mode < 2; mode++ { // 0 = FailAt, 1 = CrashAt
		for op := 1; op <= totalOps; op++ {
			fs := NewMemFS()
			fs.MkdirAll("data")
			// Seed the destination with the previous durable transfer, as a
			// re-ship overwrite would see.
			if err := WriteTransfer(fs, path, old); err != nil {
				t.Fatalf("seeding old transfer: %v", err)
			}
			if mode == 0 {
				fs.FailAt(op)
			} else {
				fs.CrashAt(op)
			}
			err := WriteTransfer(fs, path, next)
			if mode == 1 {
				fs.Crash()
				fs.Reboot()
			}
			got, rerr := ReadTransfer(fs, path)
			switch {
			case err == nil:
				// The injected fault hit cleanup or nothing observable: the
				// published file must be the new content.
				if rerr != nil {
					t.Fatalf("mode %d op %d: write ok but read failed: %v", mode, op, rerr)
				}
				if !equalTransfers(t, got, next) {
					t.Fatalf("mode %d op %d: write ok but content is not the new transfer", mode, op)
				}
			case rerr == nil:
				// Failed write, readable file: must be exactly the old or the
				// new content, never a mix.
				if !equalTransfers(t, got, old) && !equalTransfers(t, got, next) {
					t.Fatalf("mode %d op %d: failed write left torn content", mode, op)
				}
			default:
				// Failed write, unreadable/corrupt file under the final name
				// would be a torn publish; missing file is fine only if the
				// old content never survived (it did — we seeded it), unless
				// the crash rolled back a pending rename. Verify the failure
				// is a missing file or detected corruption, not silence.
				if !IsNotExist(rerr) && !IsCorrupt(rerr) {
					t.Fatalf("mode %d op %d: unexpected read failure: %v", mode, op, rerr)
				}
			}
		}
	}
}

// TestTransferSnapshotBytesSurviveWrite pins the byte-identity invariant
// the migration path relies on: the snapshot bytes that go into a
// transfer come back out of Write+Read exactly, so a sampler restored on
// the destination starts from the same marshal the source produced.
func TestTransferSnapshotBytesSurviveWrite(t *testing.T) {
	src := randTransfer(rand.New(rand.NewSource(5)))
	fs := NewMemFS()
	fs.MkdirAll("d")
	if err := WriteTransfer(fs, "d/s.xfr", src); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadTransfer(fs, "d/s.xfr")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got.Checkpoint.Snapshot, src.Checkpoint.Snapshot) {
		t.Fatal("snapshot bytes changed through write+read")
	}
}
