package durable

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"biasedres/internal/stream"
)

func testCheckpoint() Checkpoint {
	return Checkpoint{
		Seq: 7,
		Meta: StreamMeta{
			Name:     "sensor/a b",
			Policy:   "variable",
			Lambda:   0.001,
			Capacity: 128,
			Window:   0,
		},
		Next:     4242,
		Dim:      3,
		Snapshot: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	want := testCheckpoint()
	data, err := encodeCheckpoint(want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	data, err := encodeCheckpoint(testCheckpoint())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cases := map[string]func([]byte) []byte{
		"bit flip in payload": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-3] ^= 0x40
			return c
		},
		"bit flip in header": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[9] ^= 0x01
			return c
		},
		"bad magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		},
		"truncated payload": func(b []byte) []byte { return b[:len(b)-5] },
		"truncated header":  func(b []byte) []byte { return b[:12] },
		"empty":             func([]byte) []byte { return nil },
	}
	for name, mutate := range cases {
		if _, err := decodeCheckpoint(mutate(data)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		} else if !IsCorrupt(err) {
			t.Errorf("%s: error %v is not classified corrupt", name, err)
		}
	}
}

// journalBytes builds a journal file image: header for base seq plus one
// frame per record.
func journalBytes(t *testing.T, seq uint64, recs ...Record) []byte {
	t.Helper()
	buf := encodeJournalHeader(seq)
	for _, rec := range recs {
		frame, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("encodeRecord: %v", err)
		}
		buf = append(buf, frame...)
	}
	return buf
}

func opWithValue(v float64) Op {
	return Op{P: stream.Point{Index: uint64(v), Values: []float64{v}, Label: -1, Weight: 1}}
}

func TestJournalRoundtrip(t *testing.T) {
	r1 := Record{Ops: []Op{opWithValue(1), opWithValue(2)}}
	r2 := Record{Ops: []Op{{P: stream.Point{Index: 3, Values: []float64{3}}, TS: 9.5, HasTS: true}}}
	data := journalBytes(t, 4, r1, r2)
	scan, err := decodeJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if scan.base != 4 {
		t.Fatalf("base = %d, want 4", scan.base)
	}
	if scan.tornTail || scan.corrupt {
		t.Fatalf("clean journal flagged torn=%v corrupt=%v", scan.tornTail, scan.corrupt)
	}
	if len(scan.records) != 2 || !reflect.DeepEqual(scan.records[0], r1) || !reflect.DeepEqual(scan.records[1], r2) {
		t.Fatalf("records mismatch: %+v", scan.records)
	}
}

func TestJournalTornTailIsNotCorrupt(t *testing.T) {
	r1 := Record{Ops: []Op{opWithValue(1)}}
	r2 := Record{Ops: []Op{opWithValue(2)}}
	full := journalBytes(t, 1, r1, r2)
	headerAndFirst := len(journalBytes(t, 1, r1))
	// Every truncation point inside the second frame must classify as a
	// torn tail with the first record intact.
	for cut := headerAndFirst + 1; cut < len(full); cut++ {
		scan, err := decodeJournal(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: decode: %v", cut, err)
		}
		if !scan.tornTail {
			t.Fatalf("cut %d: truncated frame not flagged torn", cut)
		}
		if scan.corrupt {
			t.Fatalf("cut %d: truncation misclassified as corruption", cut)
		}
		if len(scan.records) != 1 || !reflect.DeepEqual(scan.records[0], r1) {
			t.Fatalf("cut %d: prefix lost: %+v", cut, scan.records)
		}
	}
	// A truncation exactly at a frame boundary is indistinguishable from a
	// cleanly ended journal.
	scan, err := decodeJournal(bytes.NewReader(full[:headerAndFirst]))
	if err != nil || scan.tornTail || scan.corrupt || len(scan.records) != 1 {
		t.Fatalf("boundary cut: scan=%+v err=%v", scan, err)
	}
}

func TestJournalCorruptionClassified(t *testing.T) {
	r1 := Record{Ops: []Op{opWithValue(1)}}
	r2 := Record{Ops: []Op{opWithValue(2)}}
	data := journalBytes(t, 1, r1, r2)

	// Flip a byte inside the second record's payload: CRC mismatch mid-file.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x10
	scan, err := decodeJournal(bytes.NewReader(flipped))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !scan.corrupt || scan.tornTail {
		t.Fatalf("CRC mismatch: corrupt=%v torn=%v, want corrupt only", scan.corrupt, scan.tornTail)
	}
	if len(scan.records) != 1 {
		t.Fatalf("valid prefix lost: %d records", len(scan.records))
	}

	// A garbage length field must not be treated as truncation (or allocated).
	garbage := journalBytes(t, 1, r1)
	garbage = binary.LittleEndian.AppendUint32(garbage, maxRecordBytes+1)
	garbage = binary.LittleEndian.AppendUint32(garbage, 0)
	scan, err = decodeJournal(bytes.NewReader(garbage))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !scan.corrupt {
		t.Fatal("garbage length field not flagged corrupt")
	}

	// A header failure poisons the whole file.
	if _, err := decodeJournal(bytes.NewReader([]byte("BADMAGIC12345678"))); err == nil || !IsCorrupt(err) {
		t.Fatalf("bad magic: err = %v, want corrupt", err)
	}
	if _, err := decodeJournal(bytes.NewReader([]byte("short"))); err == nil || !IsCorrupt(err) {
		t.Fatalf("short header: err = %v, want corrupt", err)
	}
}

func TestParseFile(t *testing.T) {
	cases := []struct {
		entry string
		name  string
		seq   uint64
		kind  string
		ok    bool
	}{
		{"st-sensor.3.ckpt", "sensor", 3, "ckpt", true},
		{"st-sensor.12.journal", "sensor", 12, "journal", true},
		{"st-a.b%2Fc.7.ckpt", "a.b/c", 7, "ckpt", true}, // dots and escapes in names
		{"st-sensor.3.ckpt.tmp", "", 0, "", false},
		{"st-sensor.ckpt", "", 0, "", false},
		{"notours.txt", "", 0, "", false},
		{"st-sensor.x.ckpt", "", 0, "", false},
	}
	for _, c := range cases {
		name, seq, kind, ok := parseFile(c.entry)
		if ok != c.ok || name != c.name || seq != c.seq || kind != c.kind {
			t.Errorf("parseFile(%q) = (%q,%d,%q,%v), want (%q,%d,%q,%v)",
				c.entry, name, seq, kind, ok, c.name, c.seq, c.kind, c.ok)
		}
	}
}
