package durable

import (
	"fmt"
	"io"
	"net/url"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"biasedres/internal/obs"
)

// Store owns one data directory and the per-stream checkpoint/journal
// chains inside it. It is safe for concurrent use; per-stream operations
// serialize on the stream's own lock so different streams persist in
// parallel.
//
// Lifecycle per stream:
//
//	Attach    write checkpoint <seq>, open journal <seq>   (create/recover)
//	Append    frame ops onto the active journal            (every applied batch)
//	Sync      fsync journals with unsynced appends         (coalescing loop)
//	Rotate    open journal <seq+1>; appends go there       (under the sampler lock)
//	WriteCheckpoint  write checkpoint <seq+1>, prune       (outside all locks)
//	Remove    drop every file                              (stream deletion)
//
// Rotate/WriteCheckpoint are split so the caller can pin "journal cut
// point" to the exact sampler state it marshals (both under its sampler
// lock) while the slow checkpoint write happens outside every lock.
type Store struct {
	fs  FS
	dir string

	mu      sync.Mutex
	streams map[string]*streamChain

	// Counters for the biasedres_durable_* metrics family.
	checkpoints    atomic.Uint64
	journalAppends atomic.Uint64
	recoveries     atomic.Uint64
	quarantined    atomic.Uint64
	writeErrors    atomic.Uint64
}

// streamChain is one stream's persistence state.
type streamChain struct {
	mu       sync.Mutex
	name     string
	seq      uint64 // base sequence of the active journal
	journal  File
	dirty    bool // journal has appends not yet fsynced
	lastCkpt time.Time
}

// checkpointRetention is how many checkpoint generations stay on disk:
// the newest plus one fallback in case the newest fails verification.
const checkpointRetention = 2

// quarantineDir is the subdirectory corrupt files are moved into.
const quarantineDir = "quarantine"

// Open prepares a store over dir, creating it if needed. It does not read
// anything; call Recover to load existing state.
func Open(fs FS, dir string) (*Store, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: creating data dir %s: %w", dir, err)
	}
	return &Store{fs: fs, dir: dir, streams: make(map[string]*streamChain)}, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// escapeName maps a stream name to a filename-safe token, reversed by
// unescapeName. PathEscape keeps the common case readable while never
// emitting a path separator.
func escapeName(name string) string { return url.PathEscape(name) }

func unescapeName(tok string) (string, error) { return url.PathUnescape(tok) }

// ckptPath and journalPath name a stream's files. Parsing works from the
// right (suffix, then sequence), so stream names containing dots survive.
func (s *Store) ckptPath(name string, seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("st-%s.%d.ckpt", escapeName(name), seq))
}

func (s *Store) journalPath(name string, seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("st-%s.%d.journal", escapeName(name), seq))
}

// parseFile splits a data-dir entry into stream name, sequence and kind
// ("ckpt" or "journal"); ok is false for foreign files.
func parseFile(entry string) (name string, seq uint64, kind string, ok bool) {
	if !strings.HasPrefix(entry, "st-") {
		return "", 0, "", false
	}
	rest := entry[len("st-"):]
	i := strings.LastIndexByte(rest, '.')
	if i < 0 {
		return "", 0, "", false
	}
	kind = rest[i+1:]
	if kind != "ckpt" && kind != "journal" {
		return "", 0, "", false
	}
	rest = rest[:i]
	i = strings.LastIndexByte(rest, '.')
	if i < 0 {
		return "", 0, "", false
	}
	n, err := strconv.ParseUint(rest[i+1:], 10, 64)
	if err != nil {
		return "", 0, "", false
	}
	name, err = unescapeName(rest[:i])
	if err != nil {
		return "", 0, "", false
	}
	return name, n, kind, true
}

// chain returns (creating if needed) the stream's persistence state.
func (s *Store) chain(name string) *streamChain {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.streams[name]
	if !ok {
		c = &streamChain{name: name}
		s.streams[name] = c
	}
	return c
}

// writeCheckpointFile writes ck's bytes crash-safely: temp file, fsync,
// atomic rename over the final name, directory fsync.
func (s *Store) writeCheckpointFile(name string, ck Checkpoint) error {
	data, err := encodeCheckpoint(ck)
	if err != nil {
		return err
	}
	final := s.ckptPath(name, ck.Seq)
	tmp := final + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: closing %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: publishing %s: %w", final, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("durable: syncing data dir: %w", err)
	}
	return nil
}

// openJournal opens (creating) the journal for base seq and writes its
// header. The header is synced immediately so recovery can always tell
// which checkpoint the journal follows.
func (s *Store) openJournal(name string, seq uint64) (File, error) {
	path := s.journalPath(name, seq)
	f, err := s.fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("durable: creating journal %s: %w", path, err)
	}
	if _, err := f.Write(encodeJournalHeader(seq)); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: writing journal header %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: syncing journal header %s: %w", path, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: syncing data dir: %w", err)
	}
	return f, nil
}

// Attach establishes a stream's durable chain at ck.Seq: the checkpoint
// is written first, then the journal for appends on top of it. Used when
// a stream is created (Seq 1) and after recovery rebaselines a stream.
func (s *Store) Attach(name string, ck Checkpoint) error {
	c := s.chain(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := s.writeCheckpointFile(name, ck); err != nil {
		s.writeErrors.Add(1)
		return err
	}
	j, err := s.openJournal(name, ck.Seq)
	if err != nil {
		s.writeErrors.Add(1)
		return err
	}
	if c.journal != nil {
		c.journal.Close()
	}
	c.journal = j
	c.seq = ck.Seq
	c.dirty = false
	c.lastCkpt = time.Now()
	s.checkpoints.Add(1)
	s.prune(name, ck.Seq)
	return nil
}

// Append frames ops onto the stream's active journal. The bytes reach the
// OS immediately but are only fsynced by the next Sync call — the
// coalescing that bounds loss after a hard kill to the sync interval.
func (s *Store) Append(name string, ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	data, err := encodeRecord(Record{Ops: ops})
	if err != nil {
		return err
	}
	c := s.chain(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return fmt.Errorf("durable: stream %q has no active journal", name)
	}
	if _, err := c.journal.Write(data); err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("durable: appending to journal of %q: %w", name, err)
	}
	c.dirty = true
	s.journalAppends.Add(1)
	return nil
}

// Sync fsyncs every journal with unsynced appends. Called on the
// coalescing interval; one failed journal does not stop the others.
func (s *Store) Sync() error {
	s.mu.Lock()
	chains := make([]*streamChain, 0, len(s.streams))
	for _, c := range s.streams {
		chains = append(chains, c)
	}
	s.mu.Unlock()
	var firstErr error
	for _, c := range chains {
		c.mu.Lock()
		if c.dirty && c.journal != nil {
			if err := c.journal.Sync(); err != nil {
				s.writeErrors.Add(1)
				if firstErr == nil {
					firstErr = fmt.Errorf("durable: syncing journal of %q: %w", c.name, err)
				}
			} else {
				c.dirty = false
			}
		}
		c.mu.Unlock()
	}
	return firstErr
}

// Rotate cuts the stream's journal: appends after Rotate land in the
// journal for seq+1, which the checkpoint about to be written will make
// redundant-free (records in journal N are exactly the ops applied after
// checkpoint N was marshaled). The caller must invoke Rotate at the same
// instant — under the same lock — it captures the sampler snapshot, then
// pass the returned sequence to WriteCheckpoint outside the lock.
//
// The old journal is synced before the cut so its records survive even if
// the upcoming checkpoint write fails.
func (s *Store) Rotate(name string) (uint64, error) {
	c := s.chain(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal == nil {
		return 0, fmt.Errorf("durable: stream %q has no active journal", name)
	}
	if err := c.journal.Sync(); err != nil {
		s.writeErrors.Add(1)
		return 0, fmt.Errorf("durable: syncing journal of %q before rotation: %w", name, err)
	}
	c.dirty = false
	next := c.seq + 1
	j, err := s.openJournal(name, next)
	if err != nil {
		s.writeErrors.Add(1)
		return 0, err
	}
	c.journal.Close()
	c.journal = j
	c.seq = next
	return next, nil
}

// WriteCheckpoint publishes the checkpoint for a sequence obtained from
// Rotate, then prunes generations beyond the retention horizon. Safe to
// call outside every stream lock; a failure leaves the previous chain
// (old checkpoint + both journals) fully recoverable.
func (s *Store) WriteCheckpoint(name string, ck Checkpoint) error {
	c := s.chain(name)
	if err := s.writeCheckpointFile(name, ck); err != nil {
		s.writeErrors.Add(1)
		return err
	}
	c.mu.Lock()
	c.lastCkpt = time.Now()
	c.mu.Unlock()
	s.checkpoints.Add(1)
	s.prune(name, ck.Seq)
	return nil
}

// prune deletes checkpoint generations older than the retention window
// and journals that no retained checkpoint could replay. Failed writes
// leave gaps in the sequence numbering; pruning keys off the files that
// actually exist.
func (s *Store) prune(name string, latest uint64) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	var ckptSeqs []uint64
	var journalSeqs []uint64
	for _, e := range entries {
		n, seq, kind, ok := parseFile(e)
		if !ok || n != name {
			continue
		}
		switch kind {
		case "ckpt":
			ckptSeqs = append(ckptSeqs, seq)
		case "journal":
			journalSeqs = append(journalSeqs, seq)
		}
	}
	sort.Slice(ckptSeqs, func(i, j int) bool { return ckptSeqs[i] > ckptSeqs[j] })
	if len(ckptSeqs) <= checkpointRetention {
		return
	}
	// Keep the newest retention checkpoints; every journal at or above the
	// oldest retained checkpoint is still needed for fallback replay.
	floor := ckptSeqs[checkpointRetention-1]
	for _, seq := range ckptSeqs[checkpointRetention:] {
		_ = s.fs.Remove(s.ckptPath(name, seq))
	}
	for _, seq := range journalSeqs {
		if seq < floor {
			_ = s.fs.Remove(s.journalPath(name, seq))
		}
	}
	_ = s.fs.SyncDir(s.dir)
}

// Remove drops every file of a deleted stream, including its tmp leftovers.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	c, ok := s.streams[name]
	delete(s.streams, name)
	s.mu.Unlock()
	if ok {
		c.mu.Lock()
		if c.journal != nil {
			c.journal.Close()
			c.journal = nil
		}
		c.mu.Unlock()
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		n, _, _, okf := parseFile(strings.TrimSuffix(e, ".tmp"))
		if okf && n == name {
			_ = s.fs.Remove(filepath.Join(s.dir, e))
		}
	}
	return s.fs.SyncDir(s.dir)
}

// Close syncs and closes every journal. The store is unusable afterwards.
func (s *Store) Close() error {
	err := s.Sync()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.streams {
		c.mu.Lock()
		if c.journal != nil {
			c.journal.Close()
			c.journal = nil
		}
		c.mu.Unlock()
	}
	return err
}

// quarantine moves a corrupt file into the quarantine subdirectory,
// counting it; best-effort by design (a quarantine failure must never
// stop recovery).
func (s *Store) quarantine(entry string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := s.fs.MkdirAll(qdir); err != nil {
		return
	}
	if err := s.fs.Rename(filepath.Join(s.dir, entry), filepath.Join(qdir, entry)); err != nil {
		return
	}
	_ = s.fs.SyncDir(s.dir)
	_ = s.fs.SyncDir(qdir)
	s.quarantined.Add(1)
}

// Recovered is one stream reconstructed from disk: the checkpoint that
// verified, plus every journal record that applies on top of it, in
// order. MaxSeq is the highest sequence number seen on disk for the
// stream (recovery rebaselines at MaxSeq+1 to stay above any corrupt
// newer generation). TornTail reports that the final journal ended in a
// partial record — the points of that record are the bounded loss.
type Recovered struct {
	Checkpoint Checkpoint
	Tail       []Record
	MaxSeq     uint64
	TornTail   bool
}

// Recover scans the data directory and reconstructs every stream: newest
// checkpoint whose checksum verifies (older generations are fallbacks),
// then every journal at or above it replayed in sequence order. Corrupt
// or truncated files are quarantined — moved aside, counted, never fatal.
// Streams whose every checkpoint is corrupt are dropped (their files all
// quarantined); the error return is reserved for systemic failures
// (unreadable data directory).
func (s *Store) Recover() ([]Recovered, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: scanning %s: %w", s.dir, err)
	}
	type files struct {
		ckpts    []uint64
		journals []uint64
	}
	streams := make(map[string]*files)
	for _, e := range entries {
		if strings.HasSuffix(e, ".tmp") {
			// An unpublished checkpoint temp file: a crash mid-write. The
			// rename never happened, so it is garbage by construction.
			_ = s.fs.Remove(filepath.Join(s.dir, e))
			continue
		}
		name, seq, kind, ok := parseFile(e)
		if !ok {
			continue
		}
		f := streams[name]
		if f == nil {
			f = &files{}
			streams[name] = f
		}
		switch kind {
		case "ckpt":
			f.ckpts = append(f.ckpts, seq)
		case "journal":
			f.journals = append(f.journals, seq)
		}
	}

	names := make([]string, 0, len(streams))
	for name := range streams {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []Recovered
	for _, name := range names {
		f := streams[name]
		rec, ok := s.recoverStream(name, f.ckpts, f.journals)
		if !ok {
			continue
		}
		s.recoveries.Add(1)
		out = append(out, rec)
	}
	return out, nil
}

// recoverStream reconstructs one stream from its on-disk sequences.
func (s *Store) recoverStream(name string, ckpts, journals []uint64) (Recovered, bool) {
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] }) // newest first
	sort.Slice(journals, func(i, j int) bool { return journals[i] < journals[j] })
	maxSeq := uint64(0)
	for _, seq := range ckpts {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	for _, seq := range journals {
		if seq > maxSeq {
			maxSeq = seq
		}
	}

	var ck Checkpoint
	found := false
	for _, seq := range ckpts {
		data, err := s.readFile(s.ckptPath(name, seq))
		if err != nil {
			s.quarantineSeq(name, seq, "ckpt")
			continue
		}
		c, err := decodeCheckpoint(data)
		if err != nil || c.Seq != seq || c.Meta.Name != name {
			s.quarantineSeq(name, seq, "ckpt")
			continue
		}
		ck = c
		found = true
		break
	}
	if !found {
		// No checkpoint verified: quarantine the journals too — without a
		// base state their records cannot be applied.
		for _, seq := range journals {
			s.quarantineSeq(name, seq, "journal")
		}
		return Recovered{}, false
	}

	rec := Recovered{Checkpoint: ck, MaxSeq: maxSeq}
	expect := ck.Seq
	for _, seq := range journals {
		if seq < ck.Seq {
			continue // already folded into the checkpoint
		}
		if seq != expect {
			// A gap in the journal chain: later records assume ops this
			// store never saw. Stop replay at the gap.
			break
		}
		expect = seq + 1
		r, err := s.fs.Open(s.journalPath(name, seq))
		if err != nil {
			continue
		}
		scan, err := decodeJournal(r)
		r.Close()
		if err != nil || scan.base != seq {
			s.quarantineSeq(name, seq, "journal")
			// Records in later journals assume this one's ops were applied;
			// stop replay here rather than leave a gap.
			break
		}
		rec.Tail = append(rec.Tail, scan.records...)
		if scan.corrupt {
			s.quarantineSeq(name, seq, "journal")
			break
		}
		if scan.tornTail {
			rec.TornTail = true
			break
		}
	}
	return rec, true
}

func (s *Store) quarantineSeq(name string, seq uint64, kind string) {
	s.quarantine(fmt.Sprintf("st-%s.%d.%s", escapeName(name), seq, kind))
}

// QuarantineStream moves every file of a stream aside — the caller's
// escape hatch when a chain verifies structurally but fails semantically
// (e.g. a snapshot the sampler refuses to restore).
func (s *Store) QuarantineStream(name string) {
	s.mu.Lock()
	if c, ok := s.streams[name]; ok {
		c.mu.Lock()
		if c.journal != nil {
			c.journal.Close()
			c.journal = nil
		}
		c.mu.Unlock()
		delete(s.streams, name)
	}
	s.mu.Unlock()
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		n, _, _, ok := parseFile(e)
		if ok && n == name {
			s.quarantine(e)
		}
	}
}

// readFile slurps one file through the FS.
func (s *Store) readFile(path string) ([]byte, error) {
	r, err := s.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// Stats is a point-in-time read of the store's counters.
type Stats struct {
	Checkpoints    uint64
	JournalAppends uint64
	Recoveries     uint64
	Quarantined    uint64
	WriteErrors    uint64
}

// StatsNow returns the store's counters.
func (s *Store) StatsNow() Stats {
	return Stats{
		Checkpoints:    s.checkpoints.Load(),
		JournalAppends: s.journalAppends.Load(),
		Recoveries:     s.recoveries.Load(),
		Quarantined:    s.quarantined.Load(),
		WriteErrors:    s.writeErrors.Load(),
	}
}

// Collect implements obs.Collector: the biasedres_durable_* family.
func (s *Store) Collect() []obs.Family {
	st := s.StatsNow()
	fams := []obs.Family{
		{Name: "biasedres_durable_checkpoints_total", Type: "counter",
			Help:    "Stream checkpoints written (crash-safe temp+fsync+rename).",
			Samples: []obs.Sample{{Value: float64(st.Checkpoints)}}},
		{Name: "biasedres_durable_journal_appends_total", Type: "counter",
			Help:    "Batches framed onto per-stream ops journals.",
			Samples: []obs.Sample{{Value: float64(st.JournalAppends)}}},
		{Name: "biasedres_durable_recoveries_total", Type: "counter",
			Help:    "Streams reconstructed from disk at startup.",
			Samples: []obs.Sample{{Value: float64(st.Recoveries)}}},
		{Name: "biasedres_durable_quarantined_total", Type: "counter",
			Help:    "Corrupt or unreadable files moved into the quarantine directory.",
			Samples: []obs.Sample{{Value: float64(st.Quarantined)}}},
		{Name: "biasedres_durable_write_errors_total", Type: "counter",
			Help:    "Checkpoint or journal write failures (the stream stays live; durability degrades).",
			Samples: []obs.Sample{{Value: float64(st.WriteErrors)}}},
	}
	age := obs.Family{Name: "biasedres_durable_last_checkpoint_age_seconds", Type: "gauge",
		Help: "Seconds since each stream's newest durable checkpoint."}
	s.mu.Lock()
	names := make([]string, 0, len(s.streams))
	for name := range s.streams {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	now := time.Now()
	for _, name := range names {
		s.mu.Lock()
		c, ok := s.streams[name]
		s.mu.Unlock()
		if !ok {
			continue
		}
		c.mu.Lock()
		last := c.lastCkpt
		c.mu.Unlock()
		if last.IsZero() {
			continue
		}
		age.Samples = append(age.Samples, obs.Sample{
			Labels: []obs.Label{{Key: "stream", Value: name}},
			Value:  now.Sub(last).Seconds(),
		})
	}
	if len(age.Samples) > 0 {
		fams = append(fams, age)
	}
	return fams
}
