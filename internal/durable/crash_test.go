package durable

import (
	"fmt"
	"testing"
)

// crashWorkload drives a deterministic durability script for one stream
// against fs, stopping at the first error (after a crash every operation
// fails anyway). It returns how many ops were appended before the stop
// (applied) and how many of those are guaranteed durable (floor): the
// count at the last successful journal fsync — Sync, or the sync inside
// Rotate — or at Attach.
func crashWorkload(t *testing.T, fs FS, dir string) (applied, floor uint64) {
	t.Helper()
	st, err := Open(fs, dir)
	if err != nil {
		return 0, 0
	}
	if err := st.Attach("s", Checkpoint{Seq: 1, Meta: StreamMeta{Name: "s"}, Snapshot: countSnapshot(0)}); err != nil {
		return 0, 0
	}
	const rounds = 12
	for i := uint64(1); i <= rounds; i++ {
		if err := st.Append("s", makeOps(i-1, 1)); err != nil {
			return applied, floor
		}
		applied = i
		if err := st.Sync(); err != nil {
			return applied, floor
		}
		floor = i
		if i%4 == 0 {
			// Rotate syncs the old journal before the cut, so even if the
			// checkpoint write crashes, everything up to here is durable.
			seq, err := st.Rotate("s")
			if err != nil {
				return applied, floor
			}
			if err := st.WriteCheckpoint("s", Checkpoint{Seq: seq, Meta: StreamMeta{Name: "s"}, Next: i, Snapshot: countSnapshot(i)}); err != nil {
				return applied, floor
			}
		}
	}
	if err := st.Close(); err != nil {
		return applied, floor
	}
	return applied, floor
}

// recoverCount reboots fs, recovers, and returns the stream's recovered op
// count after proving the tail is an exact prefix continuation. ok is
// false when the stream did not survive at all.
func recoverCount(t *testing.T, fs FS, dir string) (uint64, bool) {
	t.Helper()
	st, err := Open(fs, dir)
	if err != nil {
		t.Fatalf("post-crash Open: %v", err)
	}
	recs, err := st.Recover()
	if err != nil {
		t.Fatalf("post-crash Recover: %v", err)
	}
	if len(recs) == 0 {
		return 0, false
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d streams, want at most 1", len(recs))
	}
	if got := recs[0].Checkpoint.Meta.Name; got != "s" {
		t.Fatalf("recovered stream %q, want s", got)
	}
	return tailCount(t, recs[0]), true
}

// TestCrashAtEveryPoint is the recovery property test: for every reachable
// fault-injection point, killing the "process" there and recovering must
// yield a state that is (a) an exact prefix of the applied ops — never
// reordered, never corrupt — and (b) at least the durable floor promised
// by the last successful fsync. Pure crashes must never classify anything
// as corrupt, so the quarantine must stay empty.
func TestCrashAtEveryPoint(t *testing.T) {
	const maxOps = 500 // far above what the workload performs; loop exits early
	completedClean := false
	for n := 1; n <= maxOps; n++ {
		n := n
		t.Run(fmt.Sprintf("op%03d", n), func(t *testing.T) {
			fs := NewMemFS()
			fs.CrashAt(n)
			applied, floor := crashWorkload(t, fs, "data")
			full := applied == 12 // the workload's round count
			if full {
				completedClean = true
			}

			fs.Reboot()
			got, ok := recoverCount(t, fs, "data")
			if !ok {
				if floor > 0 {
					t.Fatalf("stream lost entirely with durable floor %d", floor)
				}
				return
			}
			if got < floor || got > applied {
				t.Fatalf("recovered %d ops, want within [floor %d, applied %d]", got, floor, applied)
			}
			qfiles, err := fs.ReadDir("data/" + quarantineDir)
			if err != nil {
				t.Fatalf("ReadDir quarantine: %v", err)
			}
			if len(qfiles) != 0 {
				t.Fatalf("pure crash produced quarantined files: %v", qfiles)
			}
		})
		if completedClean {
			break
		}
	}
	if !completedClean {
		t.Fatalf("crash sweep never reached a clean run within %d ops — workload larger than sweep bound", maxOps)
	}
}

// TestFailAtEveryPoint injects a single transient I/O failure (bad sector,
// full disk) at every reachable point. The operation must surface the
// error, and the chain on disk must stay recoverable: a crash-free restart
// sees a valid prefix of the applied ops.
func TestFailAtEveryPoint(t *testing.T) {
	const maxOps = 500
	completedClean := false
	for n := 1; n <= maxOps; n++ {
		n := n
		t.Run(fmt.Sprintf("op%03d", n), func(t *testing.T) {
			fs := NewMemFS()
			fs.FailAt(n)
			applied, floor := crashWorkload(t, fs, "data")
			if applied == 12 {
				completedClean = true
			}

			// No crash happened: everything written (synced or not) is on
			// "disk". Recovery must still land in [floor, applied].
			got, ok := recoverCount(t, fs, "data")
			if !ok {
				if floor > 0 {
					t.Fatalf("stream lost entirely with durable floor %d", floor)
				}
				return
			}
			if got < floor || got > applied {
				t.Fatalf("recovered %d ops, want within [floor %d, applied %d]", got, floor, applied)
			}
		})
		if completedClean {
			break
		}
	}
	if !completedClean {
		t.Fatalf("failure sweep never reached a clean run within %d ops", maxOps)
	}
}

// TestCrashMidIngestTornWrite pins the torn-write path explicitly: a crash
// during a journal append leaves a half-written frame; replay must stop at
// the tear with the synced prefix intact and without quarantining.
func TestCrashMidIngestTornWrite(t *testing.T) {
	fs := NewMemFS()
	st, err := Open(fs, "data")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Attach("s", Checkpoint{Seq: 1, Meta: StreamMeta{Name: "s"}, Snapshot: countSnapshot(0)}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := st.Append("s", makeOps(0, 2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Force the journal's current bytes durable, then crash on the very
	// next mutating op: the append's Write tears mid-frame.
	fs.CrashAt(1)
	err = st.Append("s", makeOps(2, 1))
	if err == nil {
		t.Fatal("append during crash succeeded")
	}
	fs.Reboot()
	got, ok := recoverCount(t, fs, "data")
	if !ok {
		t.Fatal("stream lost")
	}
	if got != 2 {
		t.Fatalf("recovered %d ops, want the 2 synced ones", got)
	}
}
