package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"path"
)

// Transfer encoding: one stream's whole durable chain — a checkpoint plus
// the journal tail applied after it — packed into a single self-verifying
// blob, the unit a federation drain ships from a node to its stream's new
// placement. The snapshot inside the checkpoint is the sampler's own
// MarshalBinary output, so a transfer installed on the destination and
// re-marshaled is byte-identical to the source when the tail is empty,
// and semantically identical (same points, same probabilities, same RNG
// state after replay) when it is not.
//
// File layout, following the checkpoint/journal conventions:
//
//	[8]  magic "BRESXFR1"
//	[4]  CRC32-Castagnoli of the payload
//	[8]  payload length (little-endian)
//	[n]  payload: gob(transferPayload)
//
// Like every other durable file, structural failures decode to an
// errCorrupt-wrapped error (IsCorrupt reports true): a transfer torn by a
// mid-write fault is detected, never half-applied.

var transferMagic = [8]byte{'B', 'R', 'E', 'S', 'X', 'F', 'R', '1'}

// Transfer is one stream's chain in shippable form.
type Transfer struct {
	// Checkpoint is the base state: meta, ingest bookkeeping, sampler
	// snapshot.
	Checkpoint Checkpoint
	// Tail holds the journal records applied after the checkpoint was
	// cut, in apply order. A live-cut transfer (checkpoint taken at ship
	// time) has an empty tail.
	Tail []Record
}

// transferPayload is the gob wire form of a Transfer.
type transferPayload struct {
	Checkpoint checkpointPayload
	Tail       []Record
}

// EncodeTransfer renders t into its self-verifying blob.
func EncodeTransfer(t Transfer) ([]byte, error) {
	var payload bytes.Buffer
	p := transferPayload{Checkpoint: checkpointPayload(t.Checkpoint), Tail: t.Tail}
	if err := gob.NewEncoder(&payload).Encode(p); err != nil {
		return nil, fmt.Errorf("durable: encoding transfer: %w", err)
	}
	buf := make([]byte, 0, 20+payload.Len())
	buf = append(buf, transferMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload.Bytes(), castagnoli))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payload.Len()))
	return append(buf, payload.Bytes()...), nil
}

// DecodeTransfer parses and verifies a transfer blob. Structural failures
// (bad magic, CRC mismatch, truncation) return errCorrupt-wrapped errors.
func DecodeTransfer(data []byte) (Transfer, error) {
	if len(data) < 20 {
		return Transfer{}, fmt.Errorf("%w: transfer header truncated at %d bytes", errCorrupt, len(data))
	}
	if !bytes.Equal(data[:8], transferMagic[:]) {
		return Transfer{}, fmt.Errorf("%w: bad transfer magic %q", errCorrupt, data[:8])
	}
	sum := binary.LittleEndian.Uint32(data[8:12])
	n := binary.LittleEndian.Uint64(data[12:20])
	if uint64(len(data)-20) != n {
		return Transfer{}, fmt.Errorf("%w: transfer payload is %d bytes, header says %d",
			errCorrupt, len(data)-20, n)
	}
	payload := data[20:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Transfer{}, fmt.Errorf("%w: transfer checksum mismatch", errCorrupt)
	}
	var p transferPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return Transfer{}, fmt.Errorf("%w: decoding transfer payload: %v", errCorrupt, err)
	}
	return Transfer{Checkpoint: Checkpoint(p.Checkpoint), Tail: p.Tail}, nil
}

// WriteTransfer persists a transfer blob crash-safely through fs: write
// to a temp name, sync, rename into place, sync the directory — the same
// discipline checkpoint files get, so a fault mid-write leaves either the
// old file or the new one, never a torn blob under the final name.
func WriteTransfer(fs FS, p string, t Transfer) error {
	blob, err := EncodeTransfer(t)
	if err != nil {
		return err
	}
	tmp := p + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: creating transfer file: %w", err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("durable: writing transfer file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("durable: syncing transfer file: %w", err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("durable: closing transfer file: %w", err)
	}
	if err := fs.Rename(tmp, p); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("durable: publishing transfer file: %w", err)
	}
	if err := fs.SyncDir(path.Dir(p)); err != nil {
		return fmt.Errorf("durable: syncing transfer dir: %w", err)
	}
	return nil
}

// ReadTransfer loads and verifies a transfer blob previously written with
// WriteTransfer.
func ReadTransfer(fs FS, p string) (Transfer, error) {
	rc, err := fs.Open(p)
	if err != nil {
		return Transfer{}, fmt.Errorf("durable: opening transfer file: %w", err)
	}
	defer rc.Close()
	blob, err := io.ReadAll(rc)
	if err != nil {
		return Transfer{}, fmt.Errorf("durable: reading transfer file: %w", err)
	}
	return DecodeTransfer(blob)
}
