package durable

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"path"
	"sort"
	"sync"
)

// ErrCrashed is returned by every MemFS operation after an injected crash
// point has been reached: the simulated process is dead, nothing else
// happens.
var ErrCrashed = errors.New("durable: simulated crash")

// ErrInjected is the default error surfaced by FailAt fault injection.
var ErrInjected = errors.New("durable: injected I/O failure")

// MemFS is an in-memory FS with crash semantics and fault injection, the
// test double the recovery suite is proved against. It distinguishes
// written bytes from *durable* bytes: data reaches the durable view only
// through File.Sync (for file contents) and SyncDir (for renames, creates
// and removes). Crash() discards everything that was not durable — exactly
// what a power cut or SIGKILL does to a real filesystem, with the most
// adversarial allowed outcome (nothing survives that was not fsynced).
//
// Two fault modes cover the failure families the checkpointer must
// survive:
//
//   - CrashAt(n): the n-th mutating operation (1-based) and everything
//     after it fails with ErrCrashed, and the durable view stays as it
//     was — simulating the process dying mid-operation. Writes crash
//     after applying a prefix of their payload, so torn/short writes are
//     exercised too.
//   - FailAt(n): the n-th mutating operation alone fails with ErrInjected
//     (a bad sector, a full disk); later operations succeed. The write
//     path must surface the error and leave the chain recoverable.
//
// A MemFS is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool

	// pending directory mutations: renames/creates/removes that happened
	// but are not yet pinned by SyncDir. Maps path → durable content to
	// restore on crash (nil = path did not durably exist).
	pendingDir map[string]*memSnapshot

	ops     int // mutating operations performed
	crashAt int // 0 = disabled; crash on the crashAt-th mutating op
	failAt  int // 0 = disabled; fail the failAt-th mutating op only
	crashed bool
}

type memFile struct {
	data   []byte
	synced int // prefix of data that is durable
}

type memSnapshot struct {
	exists bool
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:      make(map[string]*memFile),
		dirs:       make(map[string]bool),
		pendingDir: make(map[string]*memSnapshot),
	}
}

// CrashAt arms the crash injector: the n-th mutating operation from now
// (1-based) and all subsequent operations fail with ErrCrashed. n <= 0
// disarms.
func (m *MemFS) CrashAt(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = 0
	m.crashAt = n
}

// FailAt arms the transient-failure injector: the n-th mutating operation
// from now fails with ErrInjected; operations after it succeed. n <= 0
// disarms.
func (m *MemFS) FailAt(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = 0
	m.failAt = n
}

// Crash simulates a hard kill: every byte and directory mutation that was
// not made durable (File.Sync / SyncDir) is discarded, and all subsequent
// operations fail with ErrCrashed until Reboot.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crash()
}

func (m *MemFS) crash() {
	m.crashed = true
	for p, snap := range m.pendingDir {
		if snap == nil || !snap.exists {
			delete(m.files, p)
			continue
		}
		m.files[p] = &memFile{data: append([]byte(nil), snap.data...), synced: snap.synced}
	}
	m.pendingDir = make(map[string]*memSnapshot)
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
}

// Reboot clears the crashed flag and disarms the injectors, so the
// post-crash filesystem can be recovered from. The durable state is
// exactly what survived the crash.
func (m *MemFS) Reboot() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
	m.crashAt = 0
	m.failAt = 0
	m.ops = 0
}

// Files returns a sorted listing of every path with its size, for test
// assertions.
func (m *MemFS) Files() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.files))
	for p, f := range m.files {
		out[p] = len(f.data)
	}
	return out
}

// ReadFile returns the current (volatile) contents of path.
func (m *MemFS) ReadFile(p string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(p)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// WriteFile replaces path's contents, fully durable — the hook corruption
// tests use to plant bit-flipped or truncated files.
func (m *MemFS) WriteFile(p string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path.Clean(p)] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
}

// step accounts one mutating operation against the injectors. It returns
// the error the operation must surface (nil = proceed). partial reports
// whether a crashing write should still apply a prefix of its payload.
func (m *MemFS) step() (err error, partial bool) {
	if m.crashed {
		return ErrCrashed, false
	}
	m.ops++
	if m.crashAt > 0 && m.ops >= m.crashAt {
		m.crash()
		return ErrCrashed, true
	}
	if m.failAt > 0 && m.ops == m.failAt {
		return ErrInjected, false
	}
	return nil, false
}

// snapshotForDirMutation records path's durable state before a directory
// mutation, so a crash before SyncDir can roll it back. Only the first
// pending mutation per path matters.
func (m *MemFS) snapshotForDirMutation(p string) {
	if _, ok := m.pendingDir[p]; ok {
		return
	}
	f, ok := m.files[p]
	if !ok {
		m.pendingDir[p] = &memSnapshot{exists: false}
		return
	}
	// Only the synced prefix of the old file is durable.
	m.pendingDir[p] = &memSnapshot{exists: true, data: append([]byte(nil), f.data[:f.synced]...), synced: f.synced}
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.dirs[path.Clean(dir)] = true
	return nil
}

type memHandle struct {
	fs   *MemFS
	path string
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.path]
	if !ok {
		return 0, errors.New("durable: write to removed file " + h.path)
	}
	if err, partial := h.fs.step(); err != nil {
		if partial && len(p) > 1 {
			// Torn write: a prefix of the payload reached the page cache
			// before the crash.
			f.data = append(f.data, p[:len(p)/2]...)
		}
		return 0, err
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err, _ := h.fs.step(); err != nil {
		return err
	}
	if f, ok := h.fs.files[h.path]; ok {
		f.synced = len(f.data)
	}
	return nil
}

func (h *memHandle) Close() error { return nil }

// Create implements FS.
func (m *MemFS) Create(p string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	if err, _ := m.step(); err != nil {
		return nil, err
	}
	m.snapshotForDirMutation(p)
	m.files[p] = &memFile{}
	return &memHandle{fs: m, path: p}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(p string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	if m.crashed {
		return nil, ErrCrashed
	}
	if _, ok := m.files[p]; !ok {
		if err, _ := m.step(); err != nil {
			return nil, err
		}
		m.snapshotForDirMutation(p)
		m.files[p] = &memFile{}
	}
	return &memHandle{fs: m, path: p}, nil
}

// Open implements FS. Reads are not fault-injected: recovery runs on a
// healthy machine reading a possibly unhealthy disk image.
func (m *MemFS) Open(p string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(p)]
	if !ok {
		return nil, &fsError{op: "open", path: p}
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), f.data...))), nil
}

// Rename implements FS. The rename itself is atomic: after a crash the
// destination holds either its previous durable content or the source's
// durable content, never a mix.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = path.Clean(oldpath), path.Clean(newpath)
	if err, _ := m.step(); err != nil {
		return err
	}
	f, ok := m.files[oldpath]
	if !ok {
		return &fsError{op: "rename", path: oldpath}
	}
	m.snapshotForDirMutation(oldpath)
	m.snapshotForDirMutation(newpath)
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	if err, _ := m.step(); err != nil {
		return err
	}
	if _, ok := m.files[p]; !ok {
		return nil
	}
	m.snapshotForDirMutation(p)
	delete(m.files, p)
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = path.Clean(dir)
	var names []string
	for p := range m.files {
		if path.Dir(p) == dir {
			names = append(names, path.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: pins all pending directory mutations under dir.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = path.Clean(dir)
	if err, _ := m.step(); err != nil {
		return err
	}
	for p := range m.pendingDir {
		if path.Dir(p) == dir {
			delete(m.pendingDir, p)
		}
	}
	return nil
}

// fsError is MemFS's not-exist error; it unwraps to fs.ErrNotExist so the
// same errors.Is check covers both FS implementations.
type fsError struct {
	op   string
	path string
}

func (e *fsError) Error() string { return "durable: " + e.op + " " + e.path + ": no such file" }
func (e *fsError) Unwrap() error { return fs.ErrNotExist }

// IsNotExist reports whether err marks a missing file from any FS.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
