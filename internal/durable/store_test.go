package durable

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// countSnapshot is the fake sampler snapshot the store tests use: 8 bytes
// encoding how many ops the checkpoint has folded in. It makes "recovered
// logical state" a single comparable number.
func countSnapshot(n uint64) []byte {
	return binary.LittleEndian.AppendUint64(nil, n)
}

func snapshotCount(t *testing.T, blob []byte) uint64 {
	t.Helper()
	if len(blob) != 8 {
		t.Fatalf("snapshot is %d bytes, want 8", len(blob))
	}
	return binary.LittleEndian.Uint64(blob)
}

// makeOps returns n ops whose point values continue the sequence after
// `from`: op i carries value from+i+1. Recovery assertions rebuild the
// applied prefix from these values.
func makeOps(from uint64, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		v := from + uint64(i) + 1
		ops[i] = opWithValue(float64(v))
	}
	return ops
}

// tailCount verifies rec's journal tail is the exact op sequence following
// its checkpoint and returns the total recovered op count.
func tailCount(t *testing.T, rec Recovered) uint64 {
	t.Helper()
	n := snapshotCount(t, rec.Checkpoint.Snapshot)
	for _, r := range rec.Tail {
		for _, op := range r.Ops {
			n++
			if len(op.P.Values) != 1 || op.P.Values[0] != float64(n) {
				t.Fatalf("tail op %d carries %v, want [%d] — replay is not an exact prefix",
					n, op.P.Values, n)
			}
		}
	}
	return n
}

// testFS pairs an FS implementation with raw read/write hooks so the same
// suite proves MemFS and the production OSFS.
type testFS interface {
	FS
	read(t *testing.T, path string) []byte
	write(t *testing.T, path string, data []byte)
}

type memTestFS struct{ *MemFS }

func (m memTestFS) read(t *testing.T, path string) []byte {
	t.Helper()
	data, ok := m.ReadFile(path)
	if !ok {
		t.Fatalf("reading %s: not found", path)
	}
	return data
}

func (m memTestFS) write(t *testing.T, path string, data []byte) { m.WriteFile(path, data) }

type osTestFS struct{ OSFS }

func (osTestFS) read(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return data
}

func (osTestFS) write(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}

// withEachFS runs fn against MemFS and against OSFS rooted in a temp dir.
func withEachFS(t *testing.T, fn func(t *testing.T, fs testFS, dir string)) {
	t.Run("memfs", func(t *testing.T) {
		fn(t, memTestFS{NewMemFS()}, "data")
	})
	t.Run("osfs", func(t *testing.T) {
		fn(t, osTestFS{}, filepath.Join(t.TempDir(), "data"))
	})
}

// buildChain writes a two-generation chain for stream name: checkpoint 1
// (empty), journal 1 with ops 1..3, checkpoint 2 (count 3), journal 2 with
// ops 4..5. Returns the store.
func buildChain(t *testing.T, fs FS, dir, name string) *Store {
	t.Helper()
	st, err := Open(fs, dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := st.Attach(name, Checkpoint{Seq: 1, Meta: StreamMeta{Name: name}, Snapshot: countSnapshot(0)}); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if err := st.Append(name, makeOps(0, 3)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	seq, err := st.Rotate(name)
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if seq != 2 {
		t.Fatalf("Rotate returned seq %d, want 2", seq)
	}
	if err := st.WriteCheckpoint(name, Checkpoint{Seq: seq, Meta: StreamMeta{Name: name}, Next: 3, Snapshot: countSnapshot(3)}); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := st.Append(name, makeOps(3, 2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	return st
}

func TestStoreRecoverLifecycle(t *testing.T) {
	withEachFS(t, func(t *testing.T, fs testFS, dir string) {
		st := buildChain(t, fs, dir, "sensor")
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		st2, err := Open(fs, dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		recs, err := st2.Recover()
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		if len(recs) != 1 {
			t.Fatalf("recovered %d streams, want 1", len(recs))
		}
		rec := recs[0]
		if rec.Checkpoint.Seq != 2 || rec.Checkpoint.Meta.Name != "sensor" {
			t.Fatalf("recovered checkpoint %+v, want seq 2 for sensor", rec.Checkpoint)
		}
		if rec.MaxSeq != 2 || rec.TornTail {
			t.Fatalf("MaxSeq=%d TornTail=%v, want 2/false", rec.MaxSeq, rec.TornTail)
		}
		if n := tailCount(t, rec); n != 5 {
			t.Fatalf("recovered %d ops, want 5", n)
		}
		if got := st2.StatsNow(); got.Recoveries != 1 || got.Quarantined != 0 {
			t.Fatalf("stats after clean recovery: %+v", got)
		}

		// Rebaseline above everything on disk, then keep going.
		if err := st2.Attach("sensor", Checkpoint{Seq: rec.MaxSeq + 1, Meta: StreamMeta{Name: "sensor"}, Next: 5, Snapshot: countSnapshot(5)}); err != nil {
			t.Fatalf("rebaseline Attach: %v", err)
		}
		if err := st2.Append("sensor", makeOps(5, 1)); err != nil {
			t.Fatalf("Append after rebaseline: %v", err)
		}
		if err := st2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		st3, err := Open(fs, dir)
		if err != nil {
			t.Fatalf("reopen 2: %v", err)
		}
		recs, err = st3.Recover()
		if err != nil || len(recs) != 1 {
			t.Fatalf("second recovery: %v, %d streams", err, len(recs))
		}
		if recs[0].Checkpoint.Seq != 3 {
			t.Fatalf("second recovery picked seq %d, want 3", recs[0].Checkpoint.Seq)
		}
		if n := tailCount(t, recs[0]); n != 6 {
			t.Fatalf("second recovery has %d ops, want 6", n)
		}
	})
}

func TestRecoverFallsBackOnCorruptCheckpoint(t *testing.T) {
	corruptions := map[string]func(t *testing.T, fs testFS, path string){
		"bit flip": func(t *testing.T, fs testFS, path string) {
			data := fs.read(t, path)
			data[len(data)-2] ^= 0x04
			fs.write(t, path, data)
		},
		"truncation": func(t *testing.T, fs testFS, path string) {
			data := fs.read(t, path)
			fs.write(t, path, data[:len(data)/2])
		},
	}
	for name, corrupt := range corruptions {
		t.Run(strings.ReplaceAll(name, " ", "_"), func(t *testing.T) {
			withEachFS(t, func(t *testing.T, fs testFS, dir string) {
				st := buildChain(t, fs, dir, "sensor")
				if err := st.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				st2, err := Open(fs, dir)
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				corrupt(t, fs, st2.ckptPath("sensor", 2))

				recs, err := st2.Recover()
				if err != nil {
					t.Fatalf("Recover: %v", err)
				}
				if len(recs) != 1 {
					t.Fatalf("recovered %d streams, want 1 (fallback)", len(recs))
				}
				rec := recs[0]
				if rec.Checkpoint.Seq != 1 {
					t.Fatalf("fell back to seq %d, want 1", rec.Checkpoint.Seq)
				}
				// Both journals replay on top of checkpoint 1: full state back.
				if n := tailCount(t, rec); n != 5 {
					t.Fatalf("fallback recovered %d ops, want 5", n)
				}
				if rec.MaxSeq != 2 {
					t.Fatalf("MaxSeq = %d, want 2 (rebaseline must clear the corrupt seq)", rec.MaxSeq)
				}
				if got := st2.StatsNow().Quarantined; got != 1 {
					t.Fatalf("quarantined = %d, want 1", got)
				}
				// The corrupt file moved aside, not deleted.
				qpath := filepath.Join(dir, quarantineDir, filepath.Base(st2.ckptPath("sensor", 2)))
				if data := fs.read(t, qpath); len(data) == 0 {
					t.Fatalf("quarantined checkpoint at %s is empty", qpath)
				}
			})
		})
	}
}

func TestRecoverAllCheckpointsCorrupt(t *testing.T) {
	withEachFS(t, func(t *testing.T, fs testFS, dir string) {
		st := buildChain(t, fs, dir, "sensor")
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		st2, err := Open(fs, dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for _, seq := range []uint64{1, 2} {
			fs.write(t, st2.ckptPath("sensor", seq), []byte("garbage"))
		}
		recs, err := st2.Recover()
		if err != nil {
			t.Fatalf("Recover must not fail on per-stream corruption: %v", err)
		}
		if len(recs) != 0 {
			t.Fatalf("recovered %d streams from all-corrupt chain, want 0", len(recs))
		}
		// Both checkpoints and both journals quarantined.
		if got := st2.StatsNow().Quarantined; got != 4 {
			t.Fatalf("quarantined = %d, want 4", got)
		}
	})
}

func TestRecoverStopsAtJournalGap(t *testing.T) {
	withEachFS(t, func(t *testing.T, fs testFS, dir string) {
		st := buildChain(t, fs, dir, "sensor")
		// Extend to journal 3 so deleting journal 2 leaves a gap.
		if _, err := st.Rotate("sensor"); err != nil {
			t.Fatalf("Rotate: %v", err)
		}
		if err := st.Append("sensor", makeOps(5, 2)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := fs.Remove(filepath.Join(dir, "st-sensor.2.journal")); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		st2, err := Open(fs, dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		recs, err := st2.Recover()
		if err != nil || len(recs) != 1 {
			t.Fatalf("Recover: %v, %d streams", err, len(recs))
		}
		// Checkpoint 2 covers ops 1..3; journal 2 is gone, so journal 3's
		// records must NOT be replayed over the hole.
		if n := tailCount(t, recs[0]); n != 3 {
			t.Fatalf("recovered %d ops, want 3 (replay must stop at the gap)", n)
		}
	})
}

func TestPruneRetention(t *testing.T) {
	withEachFS(t, func(t *testing.T, fs testFS, dir string) {
		st := buildChain(t, fs, dir, "sensor")
		// Third generation: checkpoint 3 should push generation 1 out.
		seq, err := st.Rotate("sensor")
		if err != nil {
			t.Fatalf("Rotate: %v", err)
		}
		if err := st.WriteCheckpoint("sensor", Checkpoint{Seq: seq, Meta: StreamMeta{Name: "sensor"}, Next: 5, Snapshot: countSnapshot(5)}); err != nil {
			t.Fatalf("WriteCheckpoint: %v", err)
		}
		entries, err := fs.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		got := map[string]bool{}
		for _, e := range entries {
			got[e] = true
		}
		for _, want := range []string{"st-sensor.2.ckpt", "st-sensor.3.ckpt", "st-sensor.2.journal", "st-sensor.3.journal"} {
			if !got[want] {
				t.Errorf("%s missing after prune (have %v)", want, entries)
			}
		}
		for _, gone := range []string{"st-sensor.1.ckpt", "st-sensor.1.journal"} {
			if got[gone] {
				t.Errorf("%s survived prune (retention %d)", gone, checkpointRetention)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
}

func TestRemoveDropsEveryFile(t *testing.T) {
	withEachFS(t, func(t *testing.T, fs testFS, dir string) {
		st := buildChain(t, fs, dir, "sensor")
		if err := st.Remove("sensor"); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		entries, err := fs.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e, "st-") {
				t.Errorf("file %s survived Remove", e)
			}
		}
	})
}

func TestEscapedStreamNames(t *testing.T) {
	withEachFS(t, func(t *testing.T, fs testFS, dir string) {
		name := "ml/training set.v2"
		st := buildChain(t, fs, dir, name)
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		st2, err := Open(fs, dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		recs, err := st2.Recover()
		if err != nil || len(recs) != 1 {
			t.Fatalf("Recover: %v, %d streams", err, len(recs))
		}
		if recs[0].Checkpoint.Meta.Name != name {
			t.Fatalf("recovered name %q, want %q", recs[0].Checkpoint.Meta.Name, name)
		}
		if n := tailCount(t, recs[0]); n != 5 {
			t.Fatalf("recovered %d ops, want 5", n)
		}
	})
}

func TestRecoverCleansTmpLeftovers(t *testing.T) {
	withEachFS(t, func(t *testing.T, fs testFS, dir string) {
		st := buildChain(t, fs, dir, "sensor")
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		fs.write(t, filepath.Join(dir, "st-sensor.3.ckpt.tmp"), []byte("half-written"))
		st2, err := Open(fs, dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if _, err := st2.Recover(); err != nil {
			t.Fatalf("Recover: %v", err)
		}
		entries, err := fs.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e, ".tmp") {
				t.Errorf("tmp leftover %s survived recovery", e)
			}
		}
	})
}

func TestQuarantineStream(t *testing.T) {
	withEachFS(t, func(t *testing.T, fs testFS, dir string) {
		st := buildChain(t, fs, dir, "sensor")
		st.QuarantineStream("sensor")
		entries, err := fs.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e, "st-") {
				t.Errorf("file %s left in data dir after QuarantineStream", e)
			}
		}
		qentries, err := fs.ReadDir(filepath.Join(dir, quarantineDir))
		if err != nil {
			t.Fatalf("ReadDir quarantine: %v", err)
		}
		if len(qentries) != 4 { // 2 ckpts + 2 journals
			t.Fatalf("quarantine holds %d files, want 4: %v", len(qentries), qentries)
		}
	})
}
