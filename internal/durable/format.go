package durable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"biasedres/internal/stream"
)

// On-disk encodings. Both files are self-verifying:
//
// Checkpoint file:
//
//	[8]  magic "BRESCKP1" (format version baked into the last byte)
//	[4]  CRC32-Castagnoli of the payload
//	[8]  payload length (little-endian)
//	[n]  payload: gob(checkpointPayload)
//
// Journal file:
//
//	[8]  magic "BRESJRN1"
//	[8]  base checkpoint sequence (little-endian)
//	then zero or more records, each:
//	[4]  payload length (little-endian)
//	[4]  CRC32-Castagnoli of the payload
//	[n]  payload: gob(Record)
//
// A torn tail — the normal state after a crash mid-append — fails the
// length or CRC check of the last record and replay stops there; the
// valid prefix is still used. Anything that fails *before* the tail is
// corruption, and the file is quarantined rather than trusted.

var (
	ckptMagic    = [8]byte{'B', 'R', 'E', 'S', 'C', 'K', 'P', '1'}
	journalMagic = [8]byte{'B', 'R', 'E', 'S', 'J', 'R', 'N', '1'}
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt marks a file that failed structural validation (bad magic,
// bad CRC, truncation). Recovery quarantines the file instead of failing.
var errCorrupt = errors.New("durable: corrupt file")

// IsCorrupt reports whether err marks a corrupt checkpoint or journal.
func IsCorrupt(err error) bool { return errors.Is(err, errCorrupt) }

// StreamMeta is the stream configuration a checkpoint carries, enough to
// rebuild the sampler factory on recovery. It mirrors the server's create
// request.
type StreamMeta struct {
	Name     string
	Policy   string
	Lambda   float64
	Capacity int
	Window   uint64
	// Tiers and TierRatio describe a multi-horizon ladder (0/absent for
	// single-reservoir streams — gob leaves them zero when decoding
	// checkpoints written before tiers existed, which recovery reads as
	// untiered).
	Tiers     int
	TierRatio float64
}

// Checkpoint is one durable cut of a stream: its configuration, ingest
// bookkeeping and the sampler's binary snapshot, tagged with the sequence
// number that orders it against the stream's journals.
type Checkpoint struct {
	Seq  uint64
	Meta StreamMeta
	// Next is the last assigned arrival index (the server's `next`
	// counter), which can run ahead of the sampler's processed count
	// while batches sit in the async ingest queue.
	Next uint64
	// Dim is the stream's committed point dimensionality (0 = none yet).
	Dim int
	// Snapshot is the sampler's encoding.BinaryMarshaler output.
	Snapshot []byte
}

// checkpointPayload is the gob wire form of a Checkpoint.
type checkpointPayload struct {
	Seq      uint64
	Meta     StreamMeta
	Next     uint64
	Dim      int
	Snapshot []byte
}

// Op is one journaled ingest operation: the point as applied, plus the
// explicit timestamp for time-decay streams (HasTS distinguishes "AddAt
// ts" from "Add with clock+1").
type Op struct {
	P     stream.Point
	TS    float64
	HasTS bool
}

// Record is one journal entry: the ops of one applied ingest batch.
type Record struct {
	Ops []Op
}

// encodeCheckpoint renders ck into its file bytes.
func encodeCheckpoint(ck Checkpoint) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(checkpointPayload(ck)); err != nil {
		return nil, fmt.Errorf("durable: encoding checkpoint: %w", err)
	}
	buf := make([]byte, 0, 20+payload.Len())
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload.Bytes(), castagnoli))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payload.Len()))
	buf = append(buf, payload.Bytes()...)
	return buf, nil
}

// decodeCheckpoint parses and verifies checkpoint file bytes. Structural
// failures return errCorrupt-wrapped errors.
func decodeCheckpoint(data []byte) (Checkpoint, error) {
	if len(data) < 20 {
		return Checkpoint{}, fmt.Errorf("%w: checkpoint header truncated at %d bytes", errCorrupt, len(data))
	}
	if !bytes.Equal(data[:8], ckptMagic[:]) {
		return Checkpoint{}, fmt.Errorf("%w: bad checkpoint magic %q", errCorrupt, data[:8])
	}
	sum := binary.LittleEndian.Uint32(data[8:12])
	n := binary.LittleEndian.Uint64(data[12:20])
	if uint64(len(data)-20) != n {
		return Checkpoint{}, fmt.Errorf("%w: checkpoint payload is %d bytes, header says %d",
			errCorrupt, len(data)-20, n)
	}
	payload := data[20:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Checkpoint{}, fmt.Errorf("%w: checkpoint checksum mismatch", errCorrupt)
	}
	var p checkpointPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return Checkpoint{}, fmt.Errorf("%w: decoding checkpoint payload: %v", errCorrupt, err)
	}
	return Checkpoint(p), nil
}

// encodeJournalHeader renders the journal file header for base seq.
func encodeJournalHeader(seq uint64) []byte {
	buf := make([]byte, 0, 16)
	buf = append(buf, journalMagic[:]...)
	return binary.LittleEndian.AppendUint64(buf, seq)
}

// encodeRecord renders one journal record frame.
func encodeRecord(rec Record) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, fmt.Errorf("durable: encoding journal record: %w", err)
	}
	buf := make([]byte, 0, 8+payload.Len())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload.Len()))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload.Bytes(), castagnoli))
	return append(buf, payload.Bytes()...), nil
}

// journalScan is the result of reading one journal file: the base
// sequence, every intact record in order, and how the file ended.
// tornTail marks a cleanly truncated final frame — the normal disk state
// after a crash mid-append, replayable up to the tear. corrupt marks
// content that cannot be explained by truncation (CRC mismatch, garbage
// length, undecodable payload); the valid prefix is still returned but
// the file deserves quarantine.
type journalScan struct {
	base     uint64
	records  []Record
	tornTail bool
	corrupt  bool
}

// decodeJournal reads a journal stream. A header failure is corruption
// (the whole file is untrustworthy); record failures end the scan with
// the valid prefix, classified as torn or corrupt.
func decodeJournal(r io.Reader) (journalScan, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 16)
	if _, err := io.ReadFull(br, head); err != nil {
		return journalScan{}, fmt.Errorf("%w: journal header truncated: %v", errCorrupt, err)
	}
	if !bytes.Equal(head[:8], journalMagic[:]) {
		return journalScan{}, fmt.Errorf("%w: bad journal magic %q", errCorrupt, head[:8])
	}
	scan := journalScan{base: binary.LittleEndian.Uint64(head[8:16])}
	frame := make([]byte, 8)
	for {
		if _, err := io.ReadFull(br, frame); err != nil {
			if err != io.EOF {
				scan.tornTail = true // partial frame header
			}
			return scan, nil
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n > maxRecordBytes {
			scan.corrupt = true // length field is garbage, not a truncation
			return scan, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			scan.tornTail = true
			return scan, nil
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			scan.corrupt = true
			return scan, nil
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			scan.corrupt = true
			return scan, nil
		}
		scan.records = append(scan.records, rec)
	}
}

// maxRecordBytes bounds a single journal record frame; anything larger is
// treated as a corrupt length field rather than allocated.
const maxRecordBytes = 1 << 30
