package biasedres

import (
	"biasedres/internal/cluster"
	"biasedres/internal/core"
	"biasedres/internal/query"
	"biasedres/internal/xrand"
)

// Extensions beyond the paper's core algorithms: the skip-based unbiased
// reservoir (Vitter's Algorithm X), wall-clock time decay, weighted
// sampling, quantile estimation and k-means over samples.

// SkipReservoir is Vitter's Algorithm X: distributionally identical to
// NewUnbiased but drawing skip counts instead of one coin per arrival.
type SkipReservoir = core.SkipReservoir

// ZReservoir is Vitter's Algorithm Z: Algorithm X's skip draws replaced by
// O(1) rejection sampling — the fastest unbiased reservoir on long streams.
type ZReservoir = core.ZReservoir

// TimeDecayReservoir biases by wall-clock age instead of arrival count:
// p ∝ e^{-λ(T_now - T_r)} with per-point timestamps.
type TimeDecayReservoir = core.TimeDecayReservoir

// WeightedReservoir is Efraimidis-Spirakis A-Res: inclusion proportional to
// each point's own Weight. It does not support Horvitz-Thompson estimation
// (no closed-form inclusion probability).
type WeightedReservoir = core.WeightedReservoir

// TTBSReservoir is Targeted-size Time-Biased Sampling (Hentschel, Haas,
// Tian): inclusion probabilities decay at exactly e^{-λk}, with the sample
// size fluctuating around the target instead of bounded by it.
type TTBSReservoir = core.TTBSReservoir

// RTBSReservoir is Reservoir-based Time-Biased Sampling: exact exponential
// decay within a hard capacity bound, with the maximal expected sample size
// achievable under both constraints.
type RTBSReservoir = core.RTBSReservoir

// KMeansConfig controls a k-means run over a sample.
type KMeansConfig = cluster.Config

// KMeansResult is the outcome of a k-means run.
type KMeansResult = cluster.Result

// NewSkipUnbiased returns an Algorithm X unbiased reservoir: same
// distribution as NewUnbiased (Property 2.1), O(1) RNG draws per retained
// decision instead of per arrival.
func NewSkipUnbiased(capacity int, seed uint64) (*SkipReservoir, error) {
	return core.NewSkipReservoir(capacity, xrand.New(seed))
}

// NewZUnbiased returns an Algorithm Z unbiased reservoir: same
// distribution as NewUnbiased, O(1) random draws per replacement.
func NewZUnbiased(capacity int, seed uint64) (*ZReservoir, error) {
	return core.NewZReservoir(capacity, xrand.New(seed))
}

// NewTimeDecay returns a reservoir whose bias decays with wall-clock time
// at rate λ per time unit, bounded by `capacity` points. Feed it with
// AddAt(point, timestamp); plain Add treats arrivals as unit-spaced.
func NewTimeDecay(lambda float64, capacity int, seed uint64) (*TimeDecayReservoir, error) {
	return core.NewTimeDecayReservoir(lambda, capacity, xrand.New(seed))
}

// NewWeighted returns an A-Res weighted reservoir of the given capacity.
func NewWeighted(capacity int, seed uint64) (*WeightedReservoir, error) {
	return core.NewWeightedReservoir(capacity, xrand.New(seed))
}

// NewTTBS returns a T-TBS sampler: exact exponential decay at rate λ per
// arrival with target sample size n (required: n ≤ 1/(1-e^{-λ}) ≈ 1/λ).
// The size fluctuates around n; inclusion probabilities are exact, so
// Estimate and friends divide by the true presence probability.
func NewTTBS(lambda float64, target int, seed uint64) (*TTBSReservoir, error) {
	return core.NewTTBSReservoir(lambda, target, xrand.New(seed))
}

// NewRTBS returns an R-TBS sampler: exact exponential decay at rate λ per
// arrival within a hard bound of `capacity` points, holding the maximal
// expected sample size min(capacity, W(t)) via the fractional-item trick.
func NewRTBS(lambda float64, capacity int, seed uint64) (*RTBSReservoir, error) {
	return core.NewRTBSReservoir(lambda, capacity, xrand.New(seed))
}

// MergeUnbiased combines unbiased reservoirs maintained over disjoint
// stream shards into one uniform sample of the union (distributed
// aggregation). n must not exceed any source's current reservoir size.
func MergeUnbiased(n int, seed uint64, sources ...*UnbiasedReservoir) (*UnbiasedReservoir, error) {
	return core.MergeUnbiased(n, xrand.New(seed), sources...)
}

// Quantile estimates the q-quantile of one dimension over the last h
// arrivals from a reservoir, weighting sampled points by 1/p(r,t).
func Quantile(s Sampler, h uint64, dim int, q float64) (float64, error) {
	return query.Quantile(s, h, dim, q)
}

// Median estimates the median of one dimension over the last h arrivals.
func Median(s Sampler, h uint64, dim int) (float64, error) {
	return query.Median(s, h, dim)
}

// KMeans clusters a sample (e.g. a reservoir's Points) with Lloyd's
// algorithm and k-means++ seeding — the paper's "black-box multi-pass
// mining algorithm over the sample" scenario.
func KMeans(pts []Point, cfg KMeansConfig, seed uint64) (*KMeansResult, error) {
	return cluster.KMeans(pts, cfg, xrand.New(seed))
}

// ClusterPurity scores a clustering against the points' true labels.
func ClusterPurity(pts []Point, assign []int, k int) (float64, error) {
	return cluster.Purity(pts, assign, k)
}
