package biasedres

import (
	"io"

	"biasedres/internal/stream"
)

// Re-exports of the stream substrate: synthetic generators matching the
// paper's evaluation workloads, slice/CSV adapters and helpers. These give
// examples and downstream users ready-made evolving streams without
// touching internal packages.

// ClusterConfig configures the synthetic evolving-cluster generator
// (Section 5.1 of the paper).
type ClusterConfig = stream.ClusterConfig

// IntrusionConfig configures the network-intrusion stream simulator (the
// KDD CUP'99 stand-in; see DESIGN.md §5).
type IntrusionConfig = stream.IntrusionConfig

// ClusterGenerator produces the evolving-cluster stream.
type ClusterGenerator = stream.ClusterGenerator

// IntrusionGenerator produces the intrusion stream.
type IntrusionGenerator = stream.IntrusionGenerator

// DefaultClusterConfig returns the paper's synthetic workload parameters:
// 4 Gaussian clusters in 10 dimensions, radius 0.2, drifting by
// U[-0.05,0.05] per dimension per epoch, 4·10⁵ points.
func DefaultClusterConfig() ClusterConfig { return stream.DefaultClusterConfig() }

// NewClusterStream returns the synthetic evolving-cluster stream.
func NewClusterStream(cfg ClusterConfig) (*ClusterGenerator, error) {
	return stream.NewClusterGenerator(cfg)
}

// NewIntrusionStream returns the network-intrusion stream simulator. Zero
// config fields take KDD CUP'99-like defaults (494,021 points, 34
// dimensions, 23 bursty classes).
func NewIntrusionStream(cfg IntrusionConfig) (*IntrusionGenerator, error) {
	return stream.NewIntrusionGenerator(cfg)
}

// FromSlice adapts an in-memory point slice to a Stream, assigning arrival
// indices when absent.
func FromSlice(pts []Point) Stream { return stream.FromSlice(pts) }

// Take limits a stream to its first n points.
func Take(s Stream, n int) Stream { return stream.Take(s, n) }

// Collect drains up to max points (max <= 0 drains fully).
func Collect(s Stream, max int) []Point { return stream.Collect(s, max) }

// Drive feeds every point of s to fn until fn returns false or the stream
// ends, returning the number of points delivered.
func Drive(s Stream, fn func(Point) bool) uint64 { return stream.Drive(s, fn) }

// WriteCSV writes a stream in the library's CSV layout
// (index,label,weight,v0,...).
func WriteCSV(w io.Writer, s Stream) (int, error) { return stream.WriteCSV(w, s) }

// CSVReader streams points from CSV; check Err after the stream ends.
type CSVReader = stream.CSVReader

// NewCSVReader returns a Stream reading the library's CSV layout.
func NewCSVReader(r io.Reader) *CSVReader { return stream.NewCSVReader(r) }
