// Command flagcheck is the docs-freshness gate for the daemon's flag
// reference, wired into `make ci`. It extracts every flag cmd/reservoird
// defines (by scanning its source for flag.String/Int/... registrations)
// and every flag documented in docs/OPERATIONS.md (table rows whose first
// cell is a single `-flag` code span), then fails in both directions:
//
//   - a defined flag missing from the docs (the table drifted behind the
//     binary), and
//
//   - a documented flag the binary no longer defines (the table describes
//     a ghost).
//
// Coordinator-mode flags (`-federate`, `-peers`, `-replication`, `-shards`
// and every `-fed-*`) are additionally cross-referenced against the
// "Coordinator flags" table specifically: each must have its row in that
// table, and that table must not describe data-node flags — so replication
// and placement knobs cannot drift into the wrong half of the manual.
//
//	go run ./cmd/flagcheck                      # repo-root defaults
//	go run ./cmd/flagcheck -src cmd/reservoird -doc docs/OPERATIONS.md
//
// Exit status is non-zero on any drift, one line per offending flag.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// defRe matches a flag registration in Go source: flag.String("name", ...,
// including the typed variants (Int, Bool, Duration, ...). Only the name
// matters here.
var defRe = regexp.MustCompile(`flag\.[A-Z]\w*\(\s*"([^"]+)"`)

// docRe matches a Markdown flag-table row whose first cell is exactly one
// `-flag` code span: "| `-addr` | ... |".
var docRe = regexp.MustCompile("^\\|\\s*`-([A-Za-z0-9][-A-Za-z0-9]*)`\\s*\\|")

// coordSection is the heading whose table documents coordinator-mode
// flags; rows before the next heading belong to it.
const coordSection = "### Coordinator flags"

// isCoordFlag classifies a flag as coordinator-mode: meaningful only with
// -federate. New coordinator knobs must either take the fed- prefix or be
// added here, or the section check below will flag them.
func isCoordFlag(name string) bool {
	switch name {
	case "federate", "peers", "replication", "shards":
		return true
	}
	return strings.HasPrefix(name, "fed-")
}

func main() {
	src := flag.String("src", "cmd/reservoird", "directory holding the daemon's Go source")
	doc := flag.String("doc", "docs/OPERATIONS.md", "operations manual with the flag tables")
	flag.Parse()

	defined, err := definedFlags(*src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flagcheck:", err)
		os.Exit(2)
	}
	if len(defined) == 0 {
		fmt.Fprintf(os.Stderr, "flagcheck: no flag definitions found under %s\n", *src)
		os.Exit(2)
	}
	documented, inCoord, err := documentedFlags(*doc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flagcheck:", err)
		os.Exit(2)
	}

	drift := 0
	for _, name := range sorted(defined) {
		if !documented[name] {
			fmt.Fprintf(os.Stderr, "flagcheck: -%s is defined in %s but has no row in %s\n",
				name, *src, *doc)
			drift++
		}
	}
	for _, name := range sorted(documented) {
		if !defined[name] {
			fmt.Fprintf(os.Stderr, "flagcheck: -%s has a row in %s but is not defined in %s\n",
				name, *doc, *src)
			drift++
		}
	}
	// Coordinator-mode flags must sit in the coordinator table, and only
	// they may: the runbook's two halves must not trade rows.
	for _, name := range sorted(defined) {
		switch {
		case isCoordFlag(name) && documented[name] && !inCoord[name]:
			fmt.Fprintf(os.Stderr, "flagcheck: coordinator flag -%s is documented outside the %q table in %s\n",
				name, coordSection, *doc)
			drift++
		case !isCoordFlag(name) && inCoord[name]:
			fmt.Fprintf(os.Stderr, "flagcheck: data-node flag -%s has a row in the %q table in %s\n",
				name, coordSection, *doc)
			drift++
		}
	}
	if drift > 0 {
		fmt.Fprintf(os.Stderr, "flagcheck: %d flag(s) out of sync between %s and %s\n",
			drift, *src, *doc)
		os.Exit(1)
	}
	fmt.Printf("flagcheck: %d flags OK (%s ↔ %s)\n", len(defined), *src, *doc)
}

// definedFlags scans every non-test .go file under dir for flag
// registrations.
func definedFlags(dir string) (map[string]bool, error) {
	out := make(map[string]bool)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range defRe.FindAllStringSubmatch(string(blob), -1) {
			out[m[1]] = true
		}
		return nil
	})
	return out, err
}

// documentedFlags collects the flag names that head a table row in the
// Markdown file, and separately the subset whose row falls inside the
// coordinator-flags section (between its heading and the next one). Prose
// mentions (`-addr` mid-sentence) are deliberately ignored: the contract
// is a table row per flag.
func documentedFlags(path string) (all, coord map[string]bool, err error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	all, coord = make(map[string]bool), make(map[string]bool)
	inCoord := false
	for _, line := range strings.Split(string(blob), "\n") {
		if strings.HasPrefix(line, "#") {
			inCoord = strings.TrimSpace(line) == coordSection
			continue
		}
		if m := docRe.FindStringSubmatch(line); m != nil {
			all[m[1]] = true
			if inCoord {
				coord[m[1]] = true
			}
		}
	}
	return all, coord, nil
}

func sorted(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
