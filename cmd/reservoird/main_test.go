package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestNewLogger(t *testing.T) {
	for _, format := range []string{"text", "json", "TEXT"} {
		for _, level := range []string{"debug", "info", "warn", "error"} {
			if _, err := newLogger(format, level); err != nil {
				t.Errorf("newLogger(%q, %q): %v", format, level, err)
			}
		}
	}
	if _, err := newLogger("xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := newLogger("text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestPprofMuxServesIndex(t *testing.T) {
	ts := httptest.NewServer(pprofMux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	// Nothing but pprof lives on the debug mux.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("root on debug mux: status %d, want 404", resp.StatusCode)
	}
}
