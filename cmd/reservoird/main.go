// Command reservoird serves the biased reservoir sampling library over
// HTTP: create named streams, push points, query the recent past, and
// checkpoint/restore reservoirs across restarts. See internal/server for
// the API.
//
// Usage:
//
//	reservoird -addr :8080 -seed 42
//
// Example session:
//
//	curl -X PUT localhost:8080/streams/sensor \
//	     -d '{"policy":"variable","lambda":0.0001,"capacity":1000}'
//	curl -X POST localhost:8080/streams/sensor/points \
//	     -d '{"points":[{"values":[0.3,0.7],"label":1}]}'
//	curl 'localhost:8080/streams/sensor/query?type=average&h=1000'
//	curl 'localhost:8080/streams/sensor/snapshot' -o sensor.ckpt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"biasedres/internal/server"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		seed = flag.Uint64("seed", 1, "random seed for all samplers")
	)
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(*seed),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("reservoird listening on %s\n", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		fmt.Println("reservoird shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
