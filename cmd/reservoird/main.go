// Command reservoird serves the biased reservoir sampling library over
// HTTP: create named streams, push points, query the recent past, and
// checkpoint/restore reservoirs across restarts. See internal/server for
// the API.
//
// Usage:
//
//	reservoird -addr :8080 -seed 42 [-log-format text|json] [-log-level info] [-pprof :6060]
//	           [-default-policy variable] [-ingest-workers 4 -ingest-queue 64] [-wire-addr :8081]
//	           [-data-dir /var/lib/reservoird -checkpoint-interval 10s]
//	           [-retention-floor 1e-6 -retention-interval 30s]
//	reservoird -federate -peers http://n1:8080,http://n2:8080 [-addr :8080]
//	           [-fed-peer-timeout 2s -fed-hedge-delay 250ms]
//	           [-fed-health-interval 1s -fed-rise 2 -fed-fall 2]
//	           [-replication 2 -shards 4] [-wire-addr :8081]
//
// Ingest modes:
//
//	By default POST /streams/{name}/points is synchronous: the request
//	returns 200 after the points are sampled. With -ingest-workers N > 0
//	each stream gets a bounded queue (-ingest-queue batches) drained by
//	its own goroutine; ingest returns 202 immediately, a full queue
//	returns 429 with Retry-After, and at most N workers apply batches
//	concurrently. See docs/OPERATIONS.md for tuning.
//
//	With -wire-addr set, a data node additionally serves the binary wire
//	ingest protocol (internal/wire) on that address: persistent TCP
//	connections carrying length-prefixed binary frames, decoded without
//	per-point allocations into the same ingest pipeline. Backpressure is
//	an explicit NACK with a retry hint — the wire form of the 429
//	contract. See docs/ARCHITECTURE.md §8.
//
// Durability:
//
//	With -data-dir set, every stream survives process death: crash-safe
//	checkpoint files plus an append-only ops journal per stream, written
//	under the given directory. On startup the daemon recovers every
//	stream from disk (corrupt files are quarantined, never fatal); on
//	SIGTERM it drains the ingest queues and cuts a final checkpoint.
//	-checkpoint-interval and -checkpoint-min-ops tune the background
//	checkpointer; -journal-sync-interval is the fsync coalescing window
//	that bounds data loss after a hard kill. Without -data-dir the
//	daemon is memory-only, as before. See docs/OPERATIONS.md §8.
//
// Retention:
//
//	With -retention-floor p > 0 a background sweep removes reservoir
//	residents whose inclusion probability decayed below p (bounding the
//	largest Horvitz–Thompson weight at 1/p) every -retention-interval.
//	Tiers of multi-horizon streams whose points have fully decayed are
//	emptied and counted in biasedres_tier_drops_total; with -data-dir the
//	compacted state is re-checkpointed immediately. See docs/OPERATIONS.md.
//
// Federation:
//
//	With -federate the process is a coordinator instead of a data node:
//	it owns a registry of peer data nodes (-peers, extendable at runtime
//	via POST/DELETE /peers), health-checks them, and serves the query API
//	by scatter-gathering to every healthy node holding the named stream
//	and merging per-shard Horvitz–Thompson accumulators. Responses carry
//	shards_ok/shards_total and degrade to "partial": true when a shard is
//	down. See internal/federation and docs/OPERATIONS.md §9.
//
//	Streams created through the coordinator (PUT /streams/{name}) are
//	placed by rendezvous hashing onto -shards round-robin shards with
//	-replication replicas each; with -replication 2+ any single node
//	loss leaves queries whole (partial:false, estimates unchanged), and
//	POST /peers/drain live-migrates a departing node's streams onto
//	their next placement before removal. A coordinator given -wire-addr
//	accepts binary ingest frames and fans them out to the shard
//	replicas. See docs/OPERATIONS.md §11.
//
// Observability:
//
//	GET /metrics exposes Prometheus text-format counters, latency
//	histograms and per-stream sampler gauges. Requests and lifecycle
//	events are logged through log/slog (text or JSON). The -pprof flag
//	opts into a net/http/pprof listener on a separate address so
//	profiling is never exposed on the service port.
//
// Example session:
//
//	curl -X PUT localhost:8080/streams/sensor \
//	     -d '{"policy":"variable","lambda":0.0001,"capacity":1000}'
//	curl -X POST localhost:8080/streams/sensor/points \
//	     -d '{"points":[{"values":[0.3,0.7],"label":1}]}'
//	curl 'localhost:8080/streams/sensor/query?type=average&h=1000'
//	curl 'localhost:8080/streams/sensor/snapshot' -o sensor.ckpt
//	curl 'localhost:8080/metrics'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"biasedres/internal/durable"
	"biasedres/internal/federation"
	"biasedres/internal/server"
	"biasedres/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Uint64("seed", 1, "random seed for all samplers")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
		workers   = flag.Int("ingest-workers", 0,
			"enable sharded async ingest with this many concurrent batch appliers (0 = synchronous ingest)")
		queue = flag.Int("ingest-queue", 64,
			"per-stream ingest queue depth in batches (used when -ingest-workers > 0)")
		wireAddr = flag.String("wire-addr", "",
			"serve the binary wire ingest protocol on this TCP address (empty = disabled; data node only)")
		wireMaxFrame = flag.Int("wire-max-frame-bytes", 64<<20,
			"maximum wire frame body size in bytes; larger frames are rejected and the connection closed")
		dataDir = flag.String("data-dir", "",
			"persist streams under this directory: checkpoints + ops journals, recovered on startup (empty = memory-only)")
		ckptInterval = flag.Duration("checkpoint-interval", 10*time.Second,
			"background checkpointer wake period (used when -data-dir is set)")
		ckptMinOps = flag.Uint64("checkpoint-min-ops", 1,
			"minimum sampler mutations since a stream's last checkpoint before a new one is written")
		syncInterval = flag.Duration("journal-sync-interval", 100*time.Millisecond,
			"journal fsync coalescing window; bounds data loss after a hard kill")
		maxBody = flag.Int64("max-body-bytes", 8<<20,
			"maximum request body size in bytes; larger ingest/restore bodies get 413")
		defaultPolicy = flag.String("default-policy", "variable",
			"sampler family for create requests that omit \"policy\": variable | biased | constrained | unbiased | window | timedecay | ttbs | rtbs")
		retFloor = flag.Float64("retention-floor", 0,
			"drop reservoir residents whose inclusion probability decayed below this floor (0 = retention disabled)")
		retInterval = flag.Duration("retention-interval", 30*time.Second,
			"retention sweep period (used when -retention-floor > 0)")
		federate = flag.Bool("federate", false,
			"run as a federation coordinator over -peers instead of a data node")
		peers = flag.String("peers", "",
			"comma-separated peer base URLs, e.g. http://n1:8080,http://n2:8080 (coordinator mode)")
		fedPeerTimeout = flag.Duration("fed-peer-timeout", 2*time.Second,
			"per-shard call budget, hedged retry included (coordinator mode)")
		fedHedgeDelay = flag.Duration("fed-hedge-delay", 250*time.Millisecond,
			"silence before the one hedged duplicate request fires (coordinator mode)")
		fedHealthInterval = flag.Duration("fed-health-interval", time.Second,
			"peer /healthz polling period (coordinator mode)")
		fedRise = flag.Int("fed-rise", 2,
			"consecutive successful probes that revive an unhealthy peer")
		fedFall = flag.Int("fed-fall", 2,
			"consecutive failed probes that evict a healthy peer")
		replication = flag.Int("replication", 1,
			"replicas per shard of coordinator-managed streams; 2+ makes any single node loss invisible (coordinator mode)")
		shards = flag.Int("shards", 1,
			"default shard count for streams created through the coordinator without an explicit \"shards\" field")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *workers < 0 || (*workers > 0 && *queue <= 0) {
		fmt.Fprintln(os.Stderr, "reservoird: -ingest-workers must be ≥ 0 and -ingest-queue > 0")
		os.Exit(2)
	}

	// handler serves the listener; closeAPI drains background work after
	// the listener stops — either the data node's ingest/durability
	// machinery or the coordinator's health checker.
	var handler http.Handler
	var closeAPI func()
	if *federate {
		peerList := splitPeers(*peers)
		if len(peerList) == 0 {
			fmt.Fprintln(os.Stderr, "reservoird: -federate needs at least one -peers URL")
			os.Exit(2)
		}
		co, err := federation.New(peerList, federation.Config{
			PeerTimeout:    *fedPeerTimeout,
			HedgeDelay:     *fedHedgeDelay,
			HealthInterval: *fedHealthInterval,
			Rise:           *fedRise,
			Fall:           *fedFall,
			Replication:    *replication,
			Shards:         *shards,
		}, federation.WithLogger(logger))
		if err != nil {
			logger.Error("starting coordinator", "error", err)
			os.Exit(1)
		}
		logger.Info("federation coordinator mode", "peers", len(peerList),
			"peer_timeout", *fedPeerTimeout, "hedge_delay", *fedHedgeDelay,
			"health_interval", *fedHealthInterval, "rise", *fedRise, "fall", *fedFall,
			"replication", *replication, "shards", *shards)
		handler, closeAPI = co, co.Close
		if *wireAddr != "" {
			// A coordinator can front the binary ingest protocol too: each
			// frame fans out to the stream's shard replicas exactly like an
			// HTTP batch.
			wl := wire.NewListener(co,
				wire.WithLogger(logger),
				wire.WithMetrics(co.Metrics()),
				wire.WithMaxFrameBytes(*wireMaxFrame))
			wln, err := net.Listen("tcp", *wireAddr)
			if err != nil {
				logger.Error("wire listen failed", "addr", *wireAddr, "error", err)
				os.Exit(1)
			}
			go func() {
				logger.Info("wire protocol listening", "addr", wln.Addr().String(), "role", "coordinator")
				if err := wl.Serve(wln); err != nil {
					logger.Error("wire serve failed", "error", err)
				}
			}()
			closeAPI = func() {
				if err := wl.Close(); err != nil {
					logger.Warn("closing wire listener", "error", err)
				}
				co.Close()
			}
		}
	} else {
		if !server.ValidPolicy(*defaultPolicy) {
			fmt.Fprintf(os.Stderr, "reservoird: -default-policy %q is not one of %s\n",
				*defaultPolicy, strings.Join(server.Policies(), " | "))
			os.Exit(2)
		}
		opts := []server.Option{server.WithLogger(logger), server.WithMaxBodyBytes(*maxBody),
			server.WithDefaultPolicy(*defaultPolicy)}
		if *retFloor < 0 || *retFloor >= 1 {
			fmt.Fprintln(os.Stderr, "reservoird: -retention-floor must be in [0, 1)")
			os.Exit(2)
		}
		if *retFloor > 0 {
			opts = append(opts, server.WithRetention(*retFloor, *retInterval))
			logger.Info("retention enabled", "floor", *retFloor, "interval", *retInterval)
		}
		if *workers > 0 {
			opts = append(opts, server.WithIngestShards(*workers, *queue))
			logger.Info("sharded ingest enabled", "workers", *workers, "queue", *queue)
		}
		if *dataDir != "" {
			store, err := durable.Open(durable.OSFS{}, *dataDir)
			if err != nil {
				logger.Error("opening data dir", "dir", *dataDir, "error", err)
				os.Exit(1)
			}
			opts = append(opts, server.WithDurability(store, server.DurabilityConfig{
				CheckpointInterval:  *ckptInterval,
				CheckpointMinOps:    *ckptMinOps,
				JournalSyncInterval: *syncInterval,
			}))
			logger.Info("durability enabled", "data_dir", *dataDir,
				"checkpoint_interval", *ckptInterval, "checkpoint_min_ops", *ckptMinOps,
				"journal_sync_interval", *syncInterval)
		}
		api := server.New(*seed, opts...)
		handler, closeAPI = api, api.Close
		if *wireAddr != "" {
			wl := wire.NewListener(api,
				wire.WithLogger(logger),
				wire.WithMetrics(api.Metrics()),
				wire.WithMaxFrameBytes(*wireMaxFrame))
			wln, err := net.Listen("tcp", *wireAddr)
			if err != nil {
				logger.Error("wire listen failed", "addr", *wireAddr, "error", err)
				os.Exit(1)
			}
			// Advertise the resolved wire address in GET /healthz so
			// coordinators discover the binary ingest path on their own.
			api.SetWireAddr(wln.Addr().String())
			go func() {
				logger.Info("wire protocol listening", "addr", wln.Addr().String())
				if err := wl.Serve(wln); err != nil {
					logger.Error("wire serve failed", "error", err)
				}
			}()
			// Shutdown order: stop accepting wire frames first, then drain
			// the ingest shards — a frame ACKed before the listener closed
			// is applied by api.Close's drain.
			closeAPI = func() {
				if err := wl.Close(); err != nil {
					logger.Warn("closing wire listener", "error", err)
				}
				api.Close()
			}
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux()); err != nil &&
				!errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	// Listen before serving so the resolved address (":0" picks a free
	// port) is logged — the crash-recovery smoke test reads it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("reservoird listening", "addr", ln.Addr().String(), "seed", *seed)
		errCh <- srv.Serve(ln)
	}()
	select {
	case err := <-errCh:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("shutdown failed", "error", err)
			os.Exit(1)
		}
		// Drain background work after the listener stops: a data node
		// applies accepted (202) batches and, with -data-dir, cuts a final
		// checkpoint so the next start recovers every acknowledged point;
		// a coordinator stops its health checker.
		closeAPI()
		logger.Info("shutdown complete")
	}
}

// splitPeers parses the comma-separated -peers value, dropping empty
// entries so trailing commas are harmless.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// newLogger builds the process logger from the -log-format and -log-level
// flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("reservoird: unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("reservoird: unknown -log-format %q", format)
}

// pprofMux registers the pprof handlers on a dedicated mux instead of
// http.DefaultServeMux, so nothing else can leak onto the debug listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
