// Command reservoird serves the biased reservoir sampling library over
// HTTP: create named streams, push points, query the recent past, and
// checkpoint/restore reservoirs across restarts. See internal/server for
// the API.
//
// Usage:
//
//	reservoird -addr :8080 -seed 42 [-log-format text|json] [-log-level info] [-pprof :6060]
//	           [-ingest-workers 4 -ingest-queue 64]
//
// Ingest modes:
//
//	By default POST /streams/{name}/points is synchronous: the request
//	returns 200 after the points are sampled. With -ingest-workers N > 0
//	each stream gets a bounded queue (-ingest-queue batches) drained by
//	its own goroutine; ingest returns 202 immediately, a full queue
//	returns 429 with Retry-After, and at most N workers apply batches
//	concurrently. See docs/OPERATIONS.md for tuning.
//
// Observability:
//
//	GET /metrics exposes Prometheus text-format counters, latency
//	histograms and per-stream sampler gauges. Requests and lifecycle
//	events are logged through log/slog (text or JSON). The -pprof flag
//	opts into a net/http/pprof listener on a separate address so
//	profiling is never exposed on the service port.
//
// Example session:
//
//	curl -X PUT localhost:8080/streams/sensor \
//	     -d '{"policy":"variable","lambda":0.0001,"capacity":1000}'
//	curl -X POST localhost:8080/streams/sensor/points \
//	     -d '{"points":[{"values":[0.3,0.7],"label":1}]}'
//	curl 'localhost:8080/streams/sensor/query?type=average&h=1000'
//	curl 'localhost:8080/streams/sensor/snapshot' -o sensor.ckpt
//	curl 'localhost:8080/metrics'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"biasedres/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Uint64("seed", 1, "random seed for all samplers")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
		workers   = flag.Int("ingest-workers", 0,
			"enable sharded async ingest with this many concurrent batch appliers (0 = synchronous ingest)")
		queue = flag.Int("ingest-queue", 64,
			"per-stream ingest queue depth in batches (used when -ingest-workers > 0)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *workers < 0 || (*workers > 0 && *queue <= 0) {
		fmt.Fprintln(os.Stderr, "reservoird: -ingest-workers must be ≥ 0 and -ingest-queue > 0")
		os.Exit(2)
	}

	opts := []server.Option{server.WithLogger(logger)}
	if *workers > 0 {
		opts = append(opts, server.WithIngestShards(*workers, *queue))
		logger.Info("sharded ingest enabled", "workers", *workers, "queue", *queue)
	}
	api := server.New(*seed, opts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux()); err != nil &&
				!errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("reservoird listening", "addr", *addr, "seed", *seed)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("shutdown failed", "error", err)
			os.Exit(1)
		}
		// Drain the ingest queues after the listener stops: accepted (202)
		// batches are applied before exit, so a checkpoint taken on the next
		// start sees every acknowledged point.
		api.Close()
		logger.Info("shutdown complete")
	}
}

// newLogger builds the process logger from the -log-format and -log-level
// flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("reservoird: unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("reservoird: unknown -log-format %q", format)
}

// pprofMux registers the pprof handlers on a dedicated mux instead of
// http.DefaultServeMux, so nothing else can leak onto the debug listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
