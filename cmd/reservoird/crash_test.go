package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecoverySmoke is the end-to-end durability smoke test: build
// the real binary, load it with points, SIGKILL it mid-flight, restart it
// over the same data directory, and assert the stream comes back with at
// most the fsync-coalescing window of loss.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills the real binary")
	}
	bin := buildReservoird(t)
	dataDir := t.TempDir()

	// First life: ingest, wait for a checkpoint, die hard.
	proc1 := startReservoird(t, bin, dataDir)
	createStreamHTTP(t, proc1.base, "sensor")
	const total = 500
	for i := 0; i < total; i += 100 {
		pushPoints(t, proc1.base, "sensor", i, 100)
	}
	waitForMetric(t, proc1.base, "biasedres_durable_checkpoints_total", 2)
	// Give the journal sync loop (running every 10ms here) one window so
	// every acknowledged point is on disk before the kill.
	time.Sleep(100 * time.Millisecond)
	if err := proc1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = proc1.cmd.Wait()

	// Second life: same data dir, fresh port.
	proc2 := startReservoird(t, bin, dataDir)
	stats := streamStats(t, proc2.base, "sensor")
	processed, _ := stats["processed"].(float64)
	if processed != total {
		t.Fatalf("recovered processed = %v, want %d (all points were fsynced before the kill)",
			processed, total)
	}
	metrics := scrapeMetrics(t, proc2.base)
	if !strings.Contains(metrics, "biasedres_durable_recoveries_total 1") {
		t.Fatalf("recoveries metric missing or wrong:\n%s", grepMetrics(metrics, "durable"))
	}
	if !strings.Contains(metrics, "biasedres_durable_quarantined_total 0") {
		t.Fatalf("hard kill quarantined files:\n%s", grepMetrics(metrics, "durable"))
	}
	// The recovered stream keeps serving.
	pushPoints(t, proc2.base, "sensor", total, 10)
	stats = streamStats(t, proc2.base, "sensor")
	if got, _ := stats["processed"].(float64); got != total+10 {
		t.Fatalf("processed after post-recovery ingest = %v, want %d", got, total+10)
	}

	// A quarantined chain must not stop the daemon from starting.
	if err := proc2.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = proc2.cmd.Wait()
	corruptCheckpoints(t, dataDir)
	proc3 := startReservoird(t, bin, dataDir)
	resp, err := http.Get(proc3.base + "/healthz")
	if err != nil {
		t.Fatalf("healthz after corrupt start: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after corrupt start: %d", resp.StatusCode)
	}
	metrics = scrapeMetrics(t, proc3.base)
	if strings.Contains(metrics, "biasedres_durable_quarantined_total 0") {
		t.Fatalf("corrupt checkpoints not quarantined:\n%s", grepMetrics(metrics, "durable"))
	}
}

func buildReservoird(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "reservoird")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

type reservoirdProc struct {
	cmd  *exec.Cmd
	base string
}

var addrRe = regexp.MustCompile(`reservoird listening.*addr=(\S+)`)

// startReservoird launches the binary on a kernel-assigned port with fast
// durability intervals and parses the bound address from its startup log.
func startReservoird(t *testing.T, bin, dataDir string) *reservoirdProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-checkpoint-interval", "50ms",
		"-journal-sync-interval", "10ms",
	)
	var logBuf syncBuffer
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting reservoird: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(logBuf.String()); m != nil {
			addr := strings.Trim(m[1], `"`)
			return &reservoirdProc{cmd: cmd, base: "http://" + addr}
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("reservoird never logged its address; log:\n%s", logBuf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the process writes from its
// own goroutine while the test polls String.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func createStreamHTTP(t *testing.T, base, name string) {
	t.Helper()
	body := strings.NewReader(`{"policy":"variable","lambda":0.001,"capacity":100}`)
	req, err := http.NewRequest(http.MethodPut, base+"/streams/"+name, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("create stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("create stream: status %d body %s", resp.StatusCode, raw)
	}
}

func pushPoints(t *testing.T, base, name string, from, n int) {
	t.Helper()
	type pt struct {
		Values []float64 `json:"values"`
	}
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{Values: []float64{float64(from + i)}}
	}
	blob, err := json.Marshal(map[string]any{"points": pts})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/streams/"+name+"/points", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("push: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("push: status %d body %s", resp.StatusCode, raw)
	}
}

func streamStats(t *testing.T, base, name string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/streams/" + name)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stats: status %d body %s", resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	return out
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	return string(raw)
}

func grepMetrics(metrics, substr string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, substr) && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// waitForMetric polls /metrics until the named series reaches at least
// min, proving e.g. that the background checkpointer has run.
func waitForMetric(t *testing.T, base, name string, min float64) {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		metrics := scrapeMetrics(t, base)
		if m := re.FindStringSubmatch(metrics); m != nil {
			var v float64
			if _, err := fmt.Sscanf(m[1], "%g", &v); err == nil && v >= min {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never reached %g; durable series:\n%s",
				name, min, grepMetrics(metrics, "durable"))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// corruptCheckpoints bit-flips every checkpoint file in dataDir, so the
// next start must fall back to quarantine rather than crash.
func corruptCheckpoints(t *testing.T, dataDir string) {
	t.Helper()
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatalf("reading data dir: %v", err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		path := filepath.Join(dataDir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		for i := range data {
			data[i] ^= 0xFF
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no checkpoint files found to corrupt")
	}
}
