// Command linkcheck validates relative Markdown links across the
// repository — the docs' regression test, wired into `make ci`.
//
// It walks the tree for .md files (skipping .git and vendor-ish
// directories), extracts inline links and images, and checks that every
// relative target resolves to an existing file or directory and that
// fragment targets (`file.md#section`, `#section`) match a heading's
// GitHub-style anchor in the target document. External links
// (http/https/mailto) are not fetched — CI must not depend on the
// network.
//
//	go run ./cmd/linkcheck            # check the whole repository
//	go run ./cmd/linkcheck docs cmd   # check specific roots
//
// Exit status is non-zero if any link is broken, with one line per
// failure: file:line: message.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case ".git", "node_modules", "vendor":
					return filepath.SkipDir
				}
				return nil
			}
			if strings.EqualFold(filepath.Ext(path), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
	}

	broken := 0
	for _, f := range files {
		broken += checkFile(f)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s) in %d file(s) scanned\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d files OK\n", len(files))
}

// linkRe matches inline links and images: [text](target) / ![alt](target).
// Targets with spaces or nested parens are out of scope (none in this
// repository).
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// checkFile returns the number of broken links in one Markdown file.
func checkFile(path string) int {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	broken := 0
	inFence := false
	for i, line := range strings.Split(string(blob), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(path, target); msg != "" {
				fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, i+1, msg)
				broken++
			}
		}
	}
	return broken
}

// checkTarget validates one link target relative to the file it appears
// in; it returns a failure message or "".
func checkTarget(from, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not checked
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := from
	if file != "" {
		resolved = filepath.Join(filepath.Dir(from), file)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.EqualFold(filepath.Ext(resolved), ".md") {
		return "" // anchors into non-Markdown targets are not checked
	}
	anchors, err := headingAnchors(resolved)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !anchors[strings.ToLower(frag)] {
		return fmt.Sprintf("broken link %q: no heading anchors to #%s in %s", target, frag, resolved)
	}
	return ""
}

// headingAnchors returns the set of GitHub-style anchors for a Markdown
// file's headings: lowercase, punctuation dropped, spaces to hyphens,
// with -1, -2… suffixes for duplicates.
func headingAnchors(path string) (map[string]bool, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	seen := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(blob), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == line || !strings.HasPrefix(text, " ") {
			continue // not a heading (e.g. a #hashtag)
		}
		slug := slugify(strings.TrimSpace(text))
		if n := seen[slug]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			anchors[slug] = true
		}
		seen[slug]++
	}
	return anchors, nil
}

// slugify approximates GitHub's heading-to-anchor rule.
func slugify(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
