package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"biasedres/internal/stream"
)

func clusterCSV(t *testing.T, n int) string {
	t.Helper()
	cfg := stream.DefaultClusterConfig()
	cfg.Total = uint64(n)
	g, err := stream.NewClusterGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := stream.WriteCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stream.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasic(t *testing.T) {
	path := clusterCSV(t, 5000)
	var out, errw bytes.Buffer
	err := run([]string{"-in", path, "-lambda", "1e-3", "-capacity", "200"}, nil, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	if !strings.Contains(errw.String(), "processed: 5000 points") {
		t.Fatalf("report missing:\n%s", errw.String())
	}
	// The variable scheme keeps the reservoir full up to at most one
	// ejected slot (paper Section 3).
	if !strings.Contains(errw.String(), "reservoir: 200 / 200") &&
		!strings.Contains(errw.String(), "reservoir: 199 / 200") {
		t.Fatalf("variable reservoir not essentially full:\n%s", errw.String())
	}
}

func TestRunStdin(t *testing.T) {
	var csv bytes.Buffer
	for i := 1; i <= 100; i++ {
		fmt.Fprintf(&csv, "%d,0,1,%g\n", i, float64(i))
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-lambda", "0.1"}, &csv, &out, &errw); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(errw.String(), "processed: 100 points") {
		t.Fatalf("report:\n%s", errw.String())
	}
}

func TestRunQueries(t *testing.T) {
	path := clusterCSV(t, 8000)
	for _, q := range []string{"avg", "classdist", "median"} {
		var out, errw bytes.Buffer
		err := run([]string{"-in", path, "-lambda", "1e-3", "-capacity", "300", "-query", q, "-h", "2000"}, nil, &out, &errw)
		if err != nil {
			t.Fatalf("query %s: %v", q, err)
		}
		if out.Len() == 0 {
			t.Fatalf("query %s produced no output", q)
		}
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-query", "nope"}, nil, &out, &errw); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestRunPolicies(t *testing.T) {
	path := clusterCSV(t, 3000)
	for _, p := range []string{"biased", "unbiased", "z", "window", "timedecay"} {
		var out, errw bytes.Buffer
		if err := run([]string{"-in", path, "-policy", p, "-capacity", "100", "-lambda", "1e-3"}, nil, &out, &errw); err != nil {
			t.Fatalf("policy %s: %v", p, err)
		}
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-policy", "bogus"}, nil, &out, &errw); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestRunDump(t *testing.T) {
	path := clusterCSV(t, 2000)
	dump := filepath.Join(t.TempDir(), "sample.csv")
	var out, errw bytes.Buffer
	if err := run([]string{"-in", path, "-lambda", "1e-2", "-capacity", "50", "-dump", dump}, nil, &out, &errw); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := stream.NewCSVReader(f)
	pts := stream.Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(pts) == 0 || len(pts) > 50 {
		t.Fatalf("dumped %d points", len(pts))
	}
	// Dump to stdout.
	out.Reset()
	if err := run([]string{"-in", path, "-lambda", "1e-2", "-capacity", "50", "-dump", "-"}, nil, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("stdout dump empty")
	}
}

func TestRunKDDFormat(t *testing.T) {
	// Two hundred synthetic KDD rows.
	var buf bytes.Buffer
	for i := 0; i < 200; i++ {
		cols := make([]string, 0, 42)
		for c := 0; c < 41; c++ {
			switch c {
			case 1:
				cols = append(cols, "tcp")
			case 2:
				cols = append(cols, "http")
			case 3:
				cols = append(cols, "SF")
			default:
				cols = append(cols, fmt.Sprintf("%d", i%7))
			}
		}
		label := "normal"
		if i%5 == 0 {
			label = "smurf"
		}
		fmt.Fprintln(&buf, strings.Join(append(cols, label+"."), ","))
	}
	path := filepath.Join(t.TempDir(), "kdd.data")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	err := run([]string{"-in", path, "-format", "kdd", "-lambda", "1e-2", "-capacity", "50", "-query", "classdist", "-h", "200"}, nil, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "class distribution") {
		t.Fatalf("query output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-in", "/nonexistent/file.csv"}, nil, &out, &errw); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-format", "bogus"}, strings.NewReader(""), &out, &errw); err == nil {
		t.Fatal("bogus format accepted")
	}
	if err := run([]string{}, strings.NewReader(""), &out, &errw); err == nil {
		t.Fatal("empty input accepted")
	}
	if err := run([]string{"-badflag"}, strings.NewReader(""), &out, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
	// Malformed CSV propagates the parse error.
	if err := run([]string{}, strings.NewReader("not,a,valid\n"), &out, &errw); err == nil {
		t.Fatal("malformed CSV accepted")
	}
}
