// Command biasedres maintains a reservoir over a point stream read from
// stdin (or a file) and reports the resulting sample, statistics, and
// optionally query estimates.
//
// Usage:
//
//	streamgen -kind clusters -n 200000 | biasedres -lambda 1e-3
//	biasedres -in stream.csv -lambda 1e-4 -capacity 500 -dump sample.csv
//	biasedres -in kddcup.data -format kdd -lambda 1e-4 -capacity 1000 \
//	          -query classdist -h 10000
//	biasedres -in stream.csv -policy unbiased -capacity 1000
//
// Input formats:
//
//	csv   index,label,weight,v0,v1,...   (the library's layout; default)
//	kdd   the raw KDD CUP 1999 format (41 features + label), z-normalized
//
// Policies:
//
//	biased     Algorithm 2.1 when -capacity is 0 (capacity ⌊1/λ⌋),
//	           otherwise variable reservoir sampling within -capacity.
//	unbiased   classical reservoir sampling (Vitter's Algorithm R).
//	z          Vitter's Algorithm Z (same distribution, faster).
//	window     uniform sample of the last -window arrivals.
//	timedecay  exponential decay in arrival time units within -capacity.
//
// Queries (-query, evaluated at end of stream over the last -h arrivals):
//
//	avg        per-dimension average
//	classdist  fractional class distribution
//	median     per-dimension median
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"biasedres/internal/core"
	"biasedres/internal/query"
	"biasedres/internal/stream"
	"biasedres/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "biasedres: %v\n", err)
		os.Exit(1)
	}
}

// config holds the parsed command line.
type config struct {
	in       string
	format   string
	policy   string
	lambda   float64
	capacity int
	window   uint64
	seed     uint64
	dump     string
	queryTy  string
	horizon  uint64
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("biasedres", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &config{}
	fs.StringVar(&cfg.in, "in", "", "input file (default stdin)")
	fs.StringVar(&cfg.format, "format", "csv", "input format: csv | kdd")
	fs.StringVar(&cfg.policy, "policy", "biased", "sampling policy: biased | unbiased | z | window | timedecay")
	fs.Float64Var(&cfg.lambda, "lambda", 1e-4, "bias rate λ (biased/timedecay policies)")
	fs.IntVar(&cfg.capacity, "capacity", 0, "reservoir capacity (0 = derive from λ for the biased policy)")
	fs.Uint64Var(&cfg.window, "window", 10000, "window length (window policy)")
	fs.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	fs.StringVar(&cfg.dump, "dump", "", "write the final sample as CSV to this file ('-' for stdout)")
	fs.StringVar(&cfg.queryTy, "query", "", "query to evaluate at end of stream: avg | classdist | median")
	fs.Uint64Var(&cfg.horizon, "h", 10000, "query horizon in arrivals")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

// run is the testable entry point.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}

	var r io.Reader = stdin
	if cfg.in != "" {
		f, err := os.Open(cfg.in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = bufio.NewReader(f)
	}

	src, errFn, err := buildSource(cfg, r)
	if err != nil {
		return err
	}
	sampler, err := buildSampler(cfg)
	if err != nil {
		return err
	}

	labels := make(map[int]uint64)
	var dim int
	for {
		p, ok := src.Next()
		if !ok {
			break
		}
		sampler.Add(p)
		labels[p.Label]++
		if dim == 0 {
			dim = p.Dim()
		}
	}
	if err := errFn(); err != nil {
		return err
	}
	if sampler.Processed() == 0 {
		return fmt.Errorf("no input points")
	}

	report(stderr, sampler, labels)

	if cfg.queryTy != "" {
		if err := runQuery(stdout, sampler, cfg, dim); err != nil {
			return err
		}
	}

	if cfg.dump != "" {
		out, closeFn, err := openDump(cfg.dump, stdout)
		if err != nil {
			return err
		}
		defer closeFn()
		w := bufio.NewWriter(out)
		if _, err := stream.WriteCSV(w, stream.FromSlice(sampler.Sample())); err != nil {
			return err
		}
		return w.Flush()
	}
	return nil
}

func openDump(path string, stdout io.Writer) (io.Writer, func(), error) {
	if path == "-" {
		return stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// buildSource returns the input stream and a deferred error check.
func buildSource(cfg *config, r io.Reader) (stream.Stream, func() error, error) {
	switch cfg.format {
	case "csv":
		cr := stream.NewCSVReader(r)
		return cr, cr.Err, nil
	case "kdd":
		kr := stream.NewKDDReader(r, false)
		zn, err := stream.NewZNormalizer(kr, 1000)
		if err != nil {
			return nil, nil, err
		}
		return zn, kr.Err, nil
	default:
		return nil, nil, fmt.Errorf("unknown format %q (csv | kdd)", cfg.format)
	}
}

func buildSampler(cfg *config) (core.Sampler, error) {
	rng := xrand.New(cfg.seed)
	capacity := cfg.capacity
	switch cfg.policy {
	case "biased":
		if capacity == 0 {
			return core.NewBiasedReservoir(cfg.lambda, rng)
		}
		return core.NewVariableReservoir(cfg.lambda, capacity, rng)
	case "unbiased":
		if capacity == 0 {
			capacity = 1000
		}
		return core.NewUnbiasedReservoir(capacity, rng)
	case "z":
		if capacity == 0 {
			capacity = 1000
		}
		return core.NewZReservoir(capacity, rng)
	case "window":
		if capacity == 0 {
			capacity = 1000
		}
		return core.NewWindowReservoir(cfg.window, capacity, rng)
	case "timedecay":
		if capacity == 0 {
			capacity = 1000
		}
		return core.NewTimeDecayReservoir(cfg.lambda, capacity, rng)
	default:
		return nil, fmt.Errorf("unknown policy %q (biased | unbiased | z | window | timedecay)", cfg.policy)
	}
}

func runQuery(w io.Writer, s core.Sampler, cfg *config, dim int) error {
	switch cfg.queryTy {
	case "avg":
		avg, err := query.HorizonAverage(s, cfg.horizon, dim)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "average over last %d arrivals:\n", cfg.horizon)
		for d, v := range avg {
			fmt.Fprintf(w, "  dim %-3d %.6f\n", d, v)
		}
	case "classdist":
		dist, err := query.ClassDistribution(s, cfg.horizon)
		if err != nil {
			return err
		}
		type kv struct {
			label int
			frac  float64
		}
		rows := make([]kv, 0, len(dist))
		for l, f := range dist {
			rows = append(rows, kv{l, f})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].frac > rows[j].frac })
		fmt.Fprintf(w, "class distribution over last %d arrivals:\n", cfg.horizon)
		for _, row := range rows {
			fmt.Fprintf(w, "  label %-6d %.6f\n", row.label, row.frac)
		}
	case "median":
		fmt.Fprintf(w, "median over last %d arrivals:\n", cfg.horizon)
		for d := 0; d < dim; d++ {
			m, err := query.Median(s, cfg.horizon, d)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  dim %-3d %.6f\n", d, m)
		}
	default:
		return fmt.Errorf("unknown query %q (avg | classdist | median)", cfg.queryTy)
	}
	return nil
}

func report(w io.Writer, s core.Sampler, labels map[int]uint64) {
	fmt.Fprintf(w, "processed: %d points\n", s.Processed())
	fmt.Fprintf(w, "reservoir: %d / %d points\n", s.Len(), s.Capacity())

	// Age distribution of the sample.
	pts := s.Points()
	if len(pts) > 0 {
		ages := make([]uint64, len(pts))
		for i, p := range pts {
			ages[i] = s.Processed() - p.Index
		}
		sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
		fmt.Fprintf(w, "sample age: min=%d median=%d p90=%d max=%d\n",
			ages[0], ages[len(ages)/2], ages[len(ages)*9/10], ages[len(ages)-1])
	}

	// Label mix of the stream vs the sample (top 5 stream labels).
	type lc struct {
		label int
		n     uint64
	}
	var counts []lc
	var total uint64
	for l, n := range labels {
		counts = append(counts, lc{l, n})
		total += n
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].n > counts[j].n })
	sample := make(map[int]int)
	for _, p := range pts {
		sample[p.Label]++
	}
	fmt.Fprintf(w, "label      stream%%   sample%%\n")
	for i, e := range counts {
		if i == 5 {
			break
		}
		denom := len(pts)
		if denom == 0 {
			denom = 1
		}
		fmt.Fprintf(w, "%-10d %-9.4f %-9.4f\n",
			e.label,
			100*float64(e.n)/float64(total),
			100*float64(sample[e.label])/float64(denom))
	}
}
