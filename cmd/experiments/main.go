// Command experiments regenerates the evaluation figures of Aggarwal's
// "On Biased Reservoir Sampling in the presence of Stream Evolution"
// (VLDB 2006) using this library, printing each figure's series as an
// aligned text table.
//
// Usage:
//
//	experiments -all                 # every figure at paper scale
//	experiments -fig 2 -scale 0.1    # one figure at a tenth of the scale
//	experiments -fig 9 -seed 42
//
// Scale 1.0 is the paper's workload size (streams of 4·10⁵-5·10⁵ points,
// reservoirs of 1000). Smaller scales shrink streams, reservoirs and
// horizons together, preserving the dimensionless shape of each result.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"biasedres/internal/experiments"
)

// writeCSV stores one result's series under dir/<id>.csv.
func writeCSV(dir, id string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func main() {
	var (
		fig    = flag.String("fig", "", "figure to regenerate: 1..9 or fig1..fig9 (empty with -all for every figure)")
		ext    = flag.String("ext", "", "extension experiment to run: lambda | window | time | models (or 'all')")
		all    = flag.Bool("all", false, "regenerate every figure")
		scale  = flag.Float64("scale", 1.0, "workload scale; 1.0 = paper scale")
		seed   = flag.Uint64("seed", 1, "random seed")
		trials = flag.Int("trials", 0, "override per-figure trial count (0 = default)")
		csvDir = flag.String("csv", "", "also write each result's series to <dir>/<id>.csv")
		check  = flag.Bool("check", false, "evaluate each figure's registered shape claims and report PASS/FAIL")
	)
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Trials: *trials}
	type job struct {
		id  string
		run func(string, experiments.Config) (*experiments.Result, error)
	}
	var jobs []job
	if *all {
		for _, id := range experiments.IDs() {
			jobs = append(jobs, job{id, experiments.Run})
		}
	}
	if *fig != "" {
		id := *fig
		if len(id) == 1 {
			id = "fig" + id
		}
		jobs = append(jobs, job{id, experiments.Run})
	}
	switch *ext {
	case "":
	case "all":
		for _, id := range experiments.ExtIDs() {
			jobs = append(jobs, job{id, experiments.RunExt})
		}
	default:
		id := *ext
		if len(id) < 3 || id[:3] != "ext" {
			id = "ext" + id
		}
		jobs = append(jobs, job{id, experiments.RunExt})
	}
	if len(jobs) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: pass -all, -fig N, or -ext NAME (see -h)")
		os.Exit(2)
	}

	failed := false
	for _, j := range jobs {
		id := j.id
		start := time.Now()
		res, err := j.run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: rendering %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, res); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
		if *check {
			outcomes, err := experiments.CheckClaims(id, res)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			for _, o := range outcomes {
				status := "PASS"
				if !o.OK {
					status = "FAIL"
					failed = true
				}
				fmt.Printf("  [%s] %s\n", status, o.Text)
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		fmt.Fprintln(os.Stderr, "experiments: one or more shape claims FAILED")
		os.Exit(1)
	}
}
