// Command benchingest runs the repository's benchmark suites and writes
// the results to a JSON report — the reproducible harness behind the
// tables in README.md.
//
// It shells out to the repository's own toolchain, e.g. for the default
// ingest suite:
//
//	go test -run ^$ -bench BenchmarkIngest -benchmem ./internal/core ./internal/server
//
// parses the standard benchmark output (including custom metrics such as
// "points/s" and "p50-ns"), and emits one JSON document with a
// per-benchmark record plus suite-specific comparisons: batch-vs-single
// ingest speedup per sampling policy, or — with -suite query — the fused
// single-pass kernels against the legacy per-statistic query plan and
// query p50 latency under concurrent ingest with and without the snapshot
// read path. Run it from the repository root:
//
//	go run ./cmd/benchingest                     # writes BENCH_ingest.json
//	go run ./cmd/benchingest -suite query        # writes BENCH_query.json
//	go run ./cmd/benchingest -suite federation   # writes BENCH_federation.json
//	go run ./cmd/benchingest -suite wire         # writes BENCH_wire.json
//	go run ./cmd/benchingest -suite tiers        # writes BENCH_tiers.json
//	go run ./cmd/benchingest -suite failover     # writes BENCH_failover.json
//	go run ./cmd/benchingest -suite models       # writes BENCH_models.json
//	go run ./cmd/benchingest -o out.json -benchtime 2s
//
// The federation suite runs the multi-node scatter-gather harness
// (in-process coordinator + 1/2/4 data nodes under concurrent ingest) and
// reports federated query p50/p99 latency against node count. The wire
// suite races the binary TCP ingest protocol against JSON-over-HTTP on
// identical loopback connections and batches, and reports the protocol
// speedup plus the decoder's steady-state allocations per frame. The
// failover suite blackholes a replicated data node behind a fault proxy
// and reports the mean time until the coordinator serves a whole
// (partial:false, exact) answer again. The models suite runs the
// model-management drift scenario over the Aggarwal, T-TBS and R-TBS
// samplers and reports each policy's training-set staleness and
// prequential accuracy side by side.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Name         string  `json:"name"`
	Package      string  `json:"package"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	P50Ns        float64 `json:"p50_ns,omitempty"`
	P99Ns        float64 `json:"p99_ns,omitempty"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	RecoveryMS   float64 `json:"recovery_ms,omitempty"`
	TrainAgePts  float64 `json:"train_age_pts,omitempty"`
	StalenessPts float64 `json:"staleness_pts,omitempty"`
	Accuracy     float64 `json:"accuracy,omitempty"`
	Retrains     float64 `json:"retrains,omitempty"`
}

// Speedup compares the batch and single-point ingest paths for one
// sampler policy.
type Speedup struct {
	Policy          string  `json:"policy"`
	SinglePointsSec float64 `json:"single_points_per_sec"`
	BatchPointsSec  float64 `json:"batch_points_per_sec"`
	Speedup         float64 `json:"speedup"`
}

// FusedSpeedup compares the fused single-pass query kernel against the
// legacy per-statistic plan at one dimensionality.
type FusedSpeedup struct {
	Case     string  `json:"case"`
	LegacyNs float64 `json:"legacy_ns_per_op"`
	FusedNs  float64 `json:"fused_ns_per_op"`
	Speedup  float64 `json:"speedup"`
}

// UnderIngest compares query p50 latency under sustained concurrent
// ingest with the mutex read path against the snapshot read path, from
// the same harness run.
type UnderIngest struct {
	MutexP50Ns    float64 `json:"mutex_p50_ns"`
	SnapshotP50Ns float64 `json:"snapshot_p50_ns"`
	Improvement   float64 `json:"improvement"`
}

// FedLatency is one row of the federated-query latency table: end-to-end
// coordinator p50/p99 at a given data-node count, under concurrent ingest.
type FedLatency struct {
	Nodes int     `json:"nodes"`
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
}

// TierLatency is one row of the tiered range-query latency table:
// GET /range p50/p99 at a given ladder depth (tiers=1 is the plain
// single-reservoir baseline).
type TierLatency struct {
	Tiers int     `json:"tiers"`
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
}

// FailoverRecovery summarizes the failover suite: the mean time from a
// replica being blackholed until the coordinator again serves a whole
// (partial:false, exact) answer. With replication the expected cost is
// one hedge grace, not a health-sweep interval.
type FailoverRecovery struct {
	RecoveryMS float64 `json:"recovery_ms"`
}

// WireVsHTTP compares binary-TCP against JSON-over-HTTP ingest from the
// wire suite: same server, same loopback TCP, same 256-point batches.
type WireVsHTTP struct {
	Batch             int     `json:"batch"`
	BinaryPointsSec   float64 `json:"binary_points_per_sec"`
	HTTPJSONPointsSec float64 `json:"http_json_points_per_sec"`
	Speedup           float64 `json:"speedup"`
	// DecodeAllocsPerOp is the frame decoder's steady-state allocations
	// per frame (the zero-alloc ingest criterion: must be 0).
	DecodeAllocsPerOp float64 `json:"decode_allocs_per_op"`
}

// ModelRow is one row of the models suite: how fresh and how accurate the
// continuously retrained classifier stays when its sample comes from the
// given sampler family, on an identical concept-drift scenario.
type ModelRow struct {
	Policy       string  `json:"policy"`
	PointsPerSec float64 `json:"points_per_sec"`
	TrainAgePts  float64 `json:"train_age_pts"`
	StalenessPts float64 `json:"staleness_pts"`
	Accuracy     float64 `json:"accuracy"`
	Retrains     float64 `json:"retrains"`
}

// Report is the BENCH_<suite>.json document.
type Report struct {
	GeneratedBy string            `json:"generated_by"`
	GoVersion   string            `json:"go_version"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	CPU         string            `json:"cpu,omitempty"`
	Date        string            `json:"date"`
	BenchTime   string            `json:"benchtime"`
	Benchmarks  []Result          `json:"benchmarks"`
	Speedups    []Speedup         `json:"batch_vs_single,omitempty"`
	Fused       []FusedSpeedup    `json:"fused_vs_legacy,omitempty"`
	UnderIngest *UnderIngest      `json:"query_under_ingest,omitempty"`
	FedLatency  []FedLatency      `json:"federated_query_latency,omitempty"`
	Wire        *WireVsHTTP       `json:"wire_vs_http,omitempty"`
	TierLatency []TierLatency     `json:"tiered_range_latency,omitempty"`
	Failover    *FailoverRecovery `json:"failover_recovery,omitempty"`
	Models      []ModelRow        `json:"model_staleness,omitempty"`
}

func main() {
	var (
		suite     = flag.String("suite", "ingest", `benchmark suite: "ingest", "query", "federation", "wire", "tiers", "failover" or "models"`)
		out       = flag.String("o", "", "output file (default BENCH_<suite>.json)")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value")
		count     = flag.Int("count", 1, "go test -count value")
	)
	flag.Parse()

	if *out == "" {
		*out = "BENCH_" + *suite + ".json"
	}
	if err := run(*suite, *out, *benchtime, *count); err != nil {
		fmt.Fprintln(os.Stderr, "benchingest:", err)
		os.Exit(1)
	}
}

func run(suite, out, benchtime string, count int) error {
	var pattern string
	var pkgs []string
	switch suite {
	case "ingest":
		pattern, pkgs = "BenchmarkIngest", []string{"./internal/core", "./internal/server"}
	case "query":
		pattern, pkgs = "^BenchmarkQuery", []string{"./internal/query"}
	case "federation":
		pattern, pkgs = "^BenchmarkFed", []string{"./internal/federation"}
	case "wire":
		pattern, pkgs = "^BenchmarkWire", []string{"./internal/server", "./internal/wire"}
	case "tiers":
		pattern, pkgs = "^BenchmarkTiers", []string{"./internal/server"}
	case "failover":
		pattern, pkgs = "^BenchmarkFailover", []string{"./internal/federation"}
	case "models":
		pattern, pkgs = "^BenchmarkModels", []string{"./internal/models"}
	default:
		return fmt.Errorf("unknown suite %q (want ingest, query, federation, wire, tiers, failover or models)", suite)
	}
	args := append([]string{"test", "-run", "^$", "-bench", pattern, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count)}, pkgs...)
	fmt.Fprintln(os.Stderr, "running: go", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test: %w", err)
	}
	os.Stderr.Write(buf.Bytes())

	report := Report{
		GeneratedBy: "cmd/benchingest -suite " + suite,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Date:        time.Now().UTC().Format(time.RFC3339),
		BenchTime:   benchtime,
	}
	var err error
	report.Benchmarks, report.CPU, err = parse(&buf)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in go test output")
	}
	switch suite {
	case "ingest":
		report.Speedups = speedups(report.Benchmarks)
	case "query":
		report.Fused = fusedSpeedups(report.Benchmarks)
		report.UnderIngest = underIngest(report.Benchmarks)
	case "federation":
		report.FedLatency = fedLatency(report.Benchmarks)
	case "wire":
		report.Wire = wireVsHTTP(report.Benchmarks)
	case "tiers":
		report.TierLatency = tierLatency(report.Benchmarks)
	case "failover":
		report.Failover = failoverRecovery(report.Benchmarks)
	case "models":
		report.Models = modelRows(report.Benchmarks)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", out, len(report.Benchmarks))
	for _, s := range report.Speedups {
		fmt.Fprintf(os.Stderr, "  %-12s batch/single = %.2fx\n", s.Policy, s.Speedup)
	}
	for _, f := range report.Fused {
		fmt.Fprintf(os.Stderr, "  %-12s fused/legacy = %.2fx\n", f.Case, f.Speedup)
	}
	if u := report.UnderIngest; u != nil {
		fmt.Fprintf(os.Stderr, "  query p50 under ingest: mutex %.0fns, snapshot %.0fns (%.2fx)\n",
			u.MutexP50Ns, u.SnapshotP50Ns, u.Improvement)
	}
	for _, f := range report.FedLatency {
		fmt.Fprintf(os.Stderr, "  federated query, %d node(s): p50 %.0fns, p99 %.0fns\n",
			f.Nodes, f.P50Ns, f.P99Ns)
	}
	if wv := report.Wire; wv != nil {
		fmt.Fprintf(os.Stderr, "  wire batch=%d: binary %.3g points/s vs JSON-HTTP %.3g points/s = %.2fx (decode %.0f allocs/op)\n",
			wv.Batch, wv.BinaryPointsSec, wv.HTTPJSONPointsSec, wv.Speedup, wv.DecodeAllocsPerOp)
	}
	for _, tl := range report.TierLatency {
		fmt.Fprintf(os.Stderr, "  range query, %d tier(s): p50 %.0fns, p99 %.0fns\n",
			tl.Tiers, tl.P50Ns, tl.P99Ns)
	}
	if fo := report.Failover; fo != nil {
		fmt.Fprintf(os.Stderr, "  failover: whole answers resume %.1fms after a replica is blackholed\n",
			fo.RecoveryMS)
	}
	for _, mr := range report.Models {
		fmt.Fprintf(os.Stderr, "  model on %-9s train age %.0f pts, staleness %.0f pts, accuracy %.3f, retrains %.1f\n",
			mr.Policy, mr.TrainAgePts, mr.StalenessPts, mr.Accuracy, mr.Retrains)
	}
	return nil
}

// benchLine matches `BenchmarkX/sub-8  1234  56.7 ns/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parse extracts benchmark records (and the cpu: line) from go test
// -bench output. Repeated runs of one benchmark (-count > 1) are averaged.
func parse(r *bytes.Buffer) ([]Result, string, error) {
	type acc struct {
		Result
		runs int
	}
	var (
		order []string
		byKey = map[string]*acc{}
		pkg   string
		cpu   string
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if strings.HasPrefix(line, "cpu:") {
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := trimGOMAXPROCS(m[1])
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, "", fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		key := pkg + " " + name
		a, ok := byKey[key]
		if !ok {
			a = &acc{Result: Result{Name: name, Package: pkg}}
			byKey[key] = a
			order = append(order, key)
		}
		a.runs++
		a.Iterations += iters
		// The tail is value/unit pairs: "15.1 ns/op  6.6e7 points/s ...".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				a.NsPerOp += val
			case "points/s":
				a.PointsPerSec += val
			case "p50-ns":
				a.P50Ns += val
			case "p99-ns":
				a.P99Ns += val
			case "B/op":
				a.BytesPerOp += val
			case "allocs/op":
				a.AllocsPerOp += val
			case "recovery-ms":
				a.RecoveryMS += val
			case "train-age-pts":
				a.TrainAgePts += val
			case "staleness-pts":
				a.StalenessPts += val
			case "accuracy":
				a.Accuracy += val
			case "retrains":
				a.Retrains += val
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	results := make([]Result, 0, len(order))
	for _, key := range order {
		a := byKey[key]
		n := float64(a.runs)
		a.NsPerOp /= n
		a.PointsPerSec /= n
		a.P50Ns /= n
		a.P99Ns /= n
		a.BytesPerOp /= n
		a.AllocsPerOp /= n
		a.RecoveryMS /= n
		a.TrainAgePts /= n
		a.StalenessPts /= n
		a.Accuracy /= n
		a.Retrains /= n
		results = append(results, a.Result)
	}
	return results, cpu, nil
}

// trimGOMAXPROCS drops the trailing -N procs suffix Go appends to
// benchmark names ("BenchmarkX/sub-8" → "BenchmarkX/sub").
func trimGOMAXPROCS(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// speedups pairs BenchmarkIngestBatch/<policy>/... against
// BenchmarkIngestSingle/<policy> on the points/s metric.
func speedups(results []Result) []Speedup {
	single := map[string]float64{}
	batch := map[string]float64{}
	for _, r := range results {
		parts := strings.Split(r.Name, "/")
		if len(parts) < 2 || r.PointsPerSec == 0 {
			continue
		}
		switch parts[0] {
		case "BenchmarkIngestSingle":
			single[parts[1]] = r.PointsPerSec
		case "BenchmarkIngestBatch":
			batch[parts[1]] = r.PointsPerSec
		}
	}
	var out []Speedup
	for policy, s := range single {
		b, ok := batch[policy]
		if !ok || s == 0 {
			continue
		}
		out = append(out, Speedup{
			Policy:          policy,
			SinglePointsSec: s,
			BatchPointsSec:  b,
			Speedup:         b / s,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Policy < out[j].Policy })
	return out
}

// fusedSpeedups pairs BenchmarkQueryHorizonAverage/fused/<case> against
// .../legacy/<case> on ns/op.
func fusedSpeedups(results []Result) []FusedSpeedup {
	legacy := map[string]float64{}
	fused := map[string]float64{}
	for _, r := range results {
		parts := strings.Split(r.Name, "/")
		if len(parts) != 3 || parts[0] != "BenchmarkQueryHorizonAverage" {
			continue
		}
		switch parts[1] {
		case "legacy":
			legacy[parts[2]] = r.NsPerOp
		case "fused":
			fused[parts[2]] = r.NsPerOp
		}
	}
	var out []FusedSpeedup
	for c, l := range legacy {
		f, ok := fused[c]
		if !ok || f == 0 {
			continue
		}
		out = append(out, FusedSpeedup{Case: c, LegacyNs: l, FusedNs: f, Speedup: l / f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Case < out[j].Case })
	return out
}

// tierLatency extracts the BenchmarkTiersRange/tiers=N p50/p99 rows.
func tierLatency(results []Result) []TierLatency {
	var out []TierLatency
	for _, r := range results {
		var tiers int
		if _, err := fmt.Sscanf(r.Name, "BenchmarkTiersRange/tiers=%d", &tiers); err != nil {
			continue
		}
		out = append(out, TierLatency{Tiers: tiers, P50Ns: r.P50Ns, P99Ns: r.P99Ns})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tiers < out[j].Tiers })
	return out
}

// fedLatency extracts the BenchmarkFedQuery/nodes=N p50/p99 rows.
func fedLatency(results []Result) []FedLatency {
	var out []FedLatency
	for _, r := range results {
		var nodes int
		if _, err := fmt.Sscanf(r.Name, "BenchmarkFedQuery/nodes=%d", &nodes); err != nil {
			continue
		}
		out = append(out, FedLatency{Nodes: nodes, P50Ns: r.P50Ns, P99Ns: r.P99Ns})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nodes < out[j].Nodes })
	return out
}

// failoverRecovery extracts BenchmarkFailover's recovery-ms metric.
func failoverRecovery(results []Result) *FailoverRecovery {
	for _, r := range results {
		if r.Name == "BenchmarkFailover" && r.RecoveryMS > 0 {
			return &FailoverRecovery{RecoveryMS: r.RecoveryMS}
		}
	}
	return nil
}

// modelRows extracts the BenchmarkModels/policy=<name> freshness rows.
func modelRows(results []Result) []ModelRow {
	var out []ModelRow
	for _, r := range results {
		policy, ok := strings.CutPrefix(r.Name, "BenchmarkModels/policy=")
		if !ok {
			continue
		}
		out = append(out, ModelRow{
			Policy:       policy,
			PointsPerSec: r.PointsPerSec,
			TrainAgePts:  r.TrainAgePts,
			StalenessPts: r.StalenessPts,
			Accuracy:     r.Accuracy,
			Retrains:     r.Retrains,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Policy < out[j].Policy })
	return out
}

// wireVsHTTP pairs BenchmarkWireTCP against BenchmarkWireHTTPJSON on the
// points/s metric, carrying the decode benchmark's allocation count along
// as the zero-alloc evidence.
func wireVsHTTP(results []Result) *WireVsHTTP {
	wv := &WireVsHTTP{Batch: 256}
	for _, r := range results {
		switch r.Name {
		case "BenchmarkWireTCP":
			wv.BinaryPointsSec = r.PointsPerSec
		case "BenchmarkWireHTTPJSON":
			wv.HTTPJSONPointsSec = r.PointsPerSec
		case "BenchmarkWireDecodeFrame":
			wv.DecodeAllocsPerOp = r.AllocsPerOp
		}
	}
	if wv.BinaryPointsSec == 0 || wv.HTTPJSONPointsSec == 0 {
		return nil
	}
	wv.Speedup = wv.BinaryPointsSec / wv.HTTPJSONPointsSec
	return wv
}

// underIngest pairs BenchmarkQueryUnderIngest/mutex against .../snapshot
// on the p50-ns metric.
func underIngest(results []Result) *UnderIngest {
	var u UnderIngest
	for _, r := range results {
		switch r.Name {
		case "BenchmarkQueryUnderIngest/mutex":
			u.MutexP50Ns = r.P50Ns
		case "BenchmarkQueryUnderIngest/snapshot":
			u.SnapshotP50Ns = r.P50Ns
		}
	}
	if u.MutexP50Ns == 0 || u.SnapshotP50Ns == 0 {
		return nil
	}
	u.Improvement = u.MutexP50Ns / u.SnapshotP50Ns
	return &u
}
