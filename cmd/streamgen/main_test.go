package main

import (
	"testing"

	"biasedres/internal/stream"
)

func TestBuildKinds(t *testing.T) {
	for _, kind := range []string{"clusters", "intrusion", "uniform"} {
		src, err := build(kind, 100, 0, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		pts := stream.Collect(src, 0)
		if len(pts) != 100 {
			t.Fatalf("%s yielded %d points", kind, len(pts))
		}
	}
}

func TestBuildDimOverride(t *testing.T) {
	src, err := build("clusters", 10, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts := stream.Collect(src, 0)
	if pts[0].Dim() != 3 {
		t.Fatalf("dim = %d", pts[0].Dim())
	}
	src, err = build("uniform", 10, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts = stream.Collect(src, 0)
	if pts[0].Dim() != 10 {
		t.Fatalf("uniform default dim = %d", pts[0].Dim())
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := build("bogus", 10, 0, 0, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, _ := build("intrusion", 200, 0, 0, 7)
	b, _ := build("intrusion", 200, 0, 0, 7)
	pa, pb := stream.Collect(a, 0), stream.Collect(b, 0)
	for i := range pa {
		if pa[i].Label != pb[i].Label {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}
