// Command streamgen writes one of the library's synthetic streams to CSV
// (layout: index,label,weight,v0,v1,...), for feeding the biasedres CLI or
// external tools.
//
// Usage:
//
//	streamgen -kind clusters -n 100000 -seed 3 > clusters.csv
//	streamgen -kind intrusion -n 494021 > intrusion.csv
//	streamgen -kind uniform -dim 5 -n 1000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"biasedres/internal/stream"
)

func main() {
	var (
		kind = flag.String("kind", "clusters", "stream kind: clusters | intrusion | uniform")
		n    = flag.Uint64("n", 100000, "number of points")
		dim  = flag.Int("dim", 0, "dimensionality (0 = kind default)")
		k    = flag.Int("k", 4, "clusters: number of clusters")
		seed = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	src, err := build(*kind, *n, *dim, *k, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamgen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	rows, err := stream.WriteCSV(w, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamgen: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "streamgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "streamgen: wrote %d points\n", rows)
}

func build(kind string, n uint64, dim, k int, seed uint64) (stream.Stream, error) {
	switch kind {
	case "clusters":
		cfg := stream.DefaultClusterConfig()
		cfg.Total = n
		cfg.Seed = seed
		if dim > 0 {
			cfg.Dim = dim
		}
		if k > 0 {
			cfg.K = k
		}
		return stream.NewClusterGenerator(cfg)
	case "intrusion":
		cfg := stream.IntrusionConfig{Total: n, Seed: seed}
		if dim > 0 {
			cfg.Dim = dim
		}
		return stream.NewIntrusionGenerator(cfg)
	case "uniform":
		if dim <= 0 {
			dim = 10
		}
		return stream.NewUniformGenerator(dim, n, seed)
	default:
		return nil, fmt.Errorf("unknown kind %q (clusters | intrusion | uniform)", kind)
	}
}
