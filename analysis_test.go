package biasedres

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestDriftDetectorFacade(t *testing.T) {
	b, err := NewBiased(0.002, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 20k stationary points, then 2k shifted points.
	g, err := NewClusterStream(ClusterConfig{Dim: 2, K: 1, Radius: 0.1, Drift: 0, EpochLen: 1000, Total: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	Drive(g, func(p Point) bool { b.Add(p); return true })
	det, err := NewDriftDetector(b, 300, 5000, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := det.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drift {
		t.Fatalf("false alarm on stationary stream (z=%v)", rep.MaxZ)
	}
	for i := uint64(1); i <= 2000; i++ {
		b.Add(Point{Index: 20000 + i, Values: []float64{10, 10}, Weight: 1})
	}
	rep, err = det.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drift {
		t.Fatalf("missed a 10-sigma-scale shift (z=%v)", rep.MaxZ)
	}
}

func TestKDDReaderFacade(t *testing.T) {
	// Two synthetic KDD-format rows.
	row := func(v float64, label string) string {
		cols := make([]string, 0, 42)
		for i := 0; i < 41; i++ {
			switch i {
			case 1:
				cols = append(cols, "udp")
			case 2:
				cols = append(cols, "domain")
			case 3:
				cols = append(cols, "SF")
			default:
				cols = append(cols, fmt.Sprintf("%g", v))
			}
		}
		return strings.Join(append(cols, label+"."), ",")
	}
	in := row(1, "normal") + "\n" + row(2, "smurf") + "\n"
	r := NewKDDReader(strings.NewReader(in), false)
	pts := Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(pts) != 2 || pts[0].Dim() != 34 {
		t.Fatalf("parsed %d points, dim %d", len(pts), pts[0].Dim())
	}
	if name, _ := r.LabelName(pts[1].Label); name != "smurf" {
		t.Fatalf("label name = %q", name)
	}
}

func TestZNormalizerFacade(t *testing.T) {
	g, err := NewClusterStream(ClusterConfig{Dim: 3, K: 1, Radius: 5, Drift: 0, EpochLen: 1000, Total: 20000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	z, err := NewZNormalizer(g, 500)
	if err != nil {
		t.Fatal(err)
	}
	Collect(z, 10000) // warm
	var n, sumsq float64
	Drive(z, func(p Point) bool {
		n++
		sumsq += p.Values[0] * p.Values[0]
		return true
	})
	if v := sumsq / n; math.Abs(v-1) > 0.15 {
		t.Fatalf("normalized second moment %v, want ~1", v)
	}
}

func TestGroupQueriesFacade(t *testing.T) {
	s, err := NewVariable(1e-3, 300, 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20000; i++ {
		label, v := 0, 1.0
		if i%5 == 0 {
			label, v = 1, -1.0
		}
		s.Add(Point{Index: i, Values: []float64{v}, Label: label, Weight: 1})
	}
	groups, err := GroupAverage(s, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(groups[0][0]-1) > 0.2 || math.Abs(groups[1][0]+1) > 0.2 {
		t.Fatalf("group averages = %v", groups)
	}
	counts, err := GroupCount(s, 2000)
	if err != nil {
		t.Fatal(err)
	}
	total := counts[0] + counts[1]
	if math.Abs(counts[1]/total-0.2) > 0.1 {
		t.Fatalf("group counts = %v", counts)
	}
}

func TestConfusionFacade(t *testing.T) {
	cm := NewConfusion()
	cm.Observe(0, 0)
	cm.Observe(0, 1)
	acc, err := cm.Accuracy()
	if err != nil || acc != 0.5 {
		t.Fatalf("accuracy = %v, %v", acc, err)
	}
	b, _ := NewBiased(0.01, 4)
	pr, _ := NewPrequential(1, b, 10, 0)
	for i := uint64(1); i <= 200; i++ {
		pr.Step(Point{Index: i, Values: []float64{float64(i % 2)}, Label: int(i % 2), Weight: 1})
	}
	if pr.ConfusionMatrix().Total() != pr.Scored() {
		t.Fatal("prequential confusion out of sync")
	}
}

func TestMergeFacade(t *testing.T) {
	a, _ := NewUnbiased(20, 1)
	b, _ := NewUnbiased(20, 2)
	for i := uint64(1); i <= 500; i++ {
		a.Add(Point{Index: i, Weight: 1})
	}
	for i := uint64(501); i <= 1500; i++ {
		b.Add(Point{Index: i, Weight: 1})
	}
	m, err := MergeUnbiased(10, 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 10 || m.Processed() != 1500 {
		t.Fatalf("merged len/t = %d/%d", m.Len(), m.Processed())
	}
}

// Checkpoint/restore through the public API: resumed run must match the
// uninterrupted one exactly.
func TestSnapshotFacade(t *testing.T) {
	run := func(interrupt bool) []Point {
		s, err := NewVariable(1e-3, 200, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= 5000; i++ {
			s.Add(Point{Index: i, Values: []float64{float64(i)}, Weight: 1})
			if interrupt && i == 2500 {
				blob, err := s.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				s, err = NewVariable(0.5, 1, 999) // params will be overwritten
				if err != nil {
					t.Fatal(err)
				}
				if err := s.UnmarshalBinary(blob); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s.Sample()
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Index != b[i].Index {
			t.Fatalf("slot %d: %d vs %d", i, a[i].Index, b[i].Index)
		}
	}
}
