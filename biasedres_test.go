package biasedres

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// End-to-end exercise of the public API: generate an evolving stream, feed
// three samplers, run horizon queries against exact truth, classify, and
// analyze evolution — the full workflow a downstream user would run.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Total = 20000
	cfg.Seed = 5
	gen, err := NewClusterStream(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const lambda, capacity = 1e-3, 100 // p_in = 0.1
	biased, err := NewConstrained(lambda, capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	variable, err := NewVariable(lambda, capacity, 2)
	if err != nil {
		t.Fatal(err)
	}
	unbiased, err := NewUnbiased(capacity, 3)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := NewTruth(2000)
	if err != nil {
		t.Fatal(err)
	}

	n := Drive(gen, func(p Point) bool {
		truth.Observe(p)
		biased.Add(p)
		variable.Add(p)
		unbiased.Add(p)
		return true
	})
	if n != 20000 {
		t.Fatalf("drove %d points", n)
	}

	// Horizon query: biased answers, with variable essentially full.
	if got := variable.Len(); got < capacity-1 {
		t.Errorf("variable reservoir holds %d/%d", got, capacity)
	}
	est, err := HorizonAverage(variable, 1000, 10)
	if err != nil {
		t.Fatalf("variable estimate failed: %v", err)
	}
	exact, err := truth.Average(1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	for d := range est {
		mae += math.Abs(est[d] - exact[d])
	}
	mae /= float64(len(est))
	if mae > 0.5 {
		t.Errorf("variable-reservoir horizon average MAE = %v (suspiciously large)", mae)
	}

	// Count query with variance.
	cnt, v := EstimateWithVariance(biased, CountQuery(1000))
	if cnt < 0 || v < 0 {
		t.Fatalf("count %v variance %v", cnt, v)
	}

	// Class distribution sums to 1.
	dist, err := ClassDistribution(variable, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range dist {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("class fractions sum to %v", sum)
	}

	// Range selectivity within [0,1].
	rect, err := NewRect([]int{0}, []float64{0}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := RangeSelectivity(variable, 1000, rect)
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0 || sel > 1 {
		t.Fatalf("selectivity %v", sel)
	}

	// Classification over the reservoir.
	knn, err := NewKNN(1, variable)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := knn.Classify(make([]float64, 10)); err != nil {
		t.Fatal(err)
	}

	// Evolution analysis.
	mix, err := MixingIndex(variable.Points())
	if err != nil {
		t.Fatal(err)
	}
	if mix < 0 || mix > 1 {
		t.Fatalf("mixing index %v", mix)
	}
	snap, err := ProjectReservoir(variable.Points(), variable.Processed(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	plot, err := RenderScatter(snap, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plot, "t=20000") {
		t.Fatalf("scatter header wrong:\n%s", plot)
	}
}

func TestFacadeRequirements(t *testing.T) {
	if got := ExpMaxRequirement(0.01, 1_000_000); math.Abs(got-1/(1-math.Exp(-0.01))) > 1e-6 {
		t.Fatalf("requirement = %v", got)
	}
	e := Exponential{Lambda: 0.1}
	brute := MaxReservoirRequirement(e, 100)
	closed := ExpMaxRequirement(0.1, 100)
	if math.Abs(brute-closed) > 1e-9*closed {
		t.Fatalf("brute %v vs closed %v", brute, closed)
	}
}

func TestFacadeWindowAndSync(t *testing.T) {
	w, err := NewWindow(100, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	s := Synchronized(w)
	for i := 1; i <= 1000; i++ {
		s.Add(Point{Index: uint64(i), Values: []float64{float64(i)}, Weight: 1})
	}
	for _, p := range s.Sample() {
		if 1000-p.Index >= 100 {
			t.Fatalf("window sample contains expired point %d", p.Index)
		}
	}
}

func TestFacadeManager(t *testing.T) {
	m, err := NewManager(100, 0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register("a", 50); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 500; i++ {
		if err := m.Add("a", Point{Index: uint64(i), Values: []float64{1}, Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	sample, err := m.Sample("a")
	if err != nil || len(sample) == 0 {
		t.Fatalf("sample: %d points, err %v", len(sample), err)
	}
}

func TestFacadeCSVRoundTrip(t *testing.T) {
	pts := []Point{
		{Values: []float64{1, 2}, Label: 1, Weight: 1},
		{Values: []float64{3, 4}, Label: 2, Weight: 1},
	}
	var buf bytes.Buffer
	n, err := WriteCSV(&buf, FromSlice(pts))
	if err != nil || n != 2 {
		t.Fatalf("wrote %d, err %v", n, err)
	}
	r := NewCSVReader(&buf)
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != 2 || got[1].Values[1] != 4 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestFacadeIntrusionStream(t *testing.T) {
	g, err := NewIntrusionStream(IntrusionConfig{Total: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := Collect(Take(g, 40), 0)
	if len(pts) != 40 {
		t.Fatalf("Take(40) collected %d", len(pts))
	}
	rest := Collect(g, 0)
	if len(rest) != 60 {
		t.Fatalf("remaining = %d, want 60", len(rest))
	}
}

func TestPrequentialFacade(t *testing.T) {
	b, _ := NewBiased(0.01, 4)
	pr, err := NewPrequential(1, b, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig()
	cfg.Dim, cfg.K, cfg.Total, cfg.Seed = 2, 2, 2000, 8
	g, _ := NewClusterStream(cfg)
	Drive(g, func(p Point) bool { pr.Step(p); return true })
	acc, err := pr.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0.5 {
		t.Fatalf("accuracy %v on 2-cluster stream", acc)
	}
}
