// Drift detection from a biased reservoir.
//
// The detector compares the per-dimension mean over a short recent horizon
// against a long reference horizon — both estimated from one biased
// reservoir with the paper's Horvitz-Thompson machinery, each with its own
// variance estimate (Lemma 4.1) — and fires when the gap exceeds a z-score
// threshold. This example streams data whose mean jumps at three known
// points and shows the detector firing at each jump and staying quiet in
// between.
//
//	go run ./examples/driftwatch
package main

import (
	"fmt"
	"log"

	"biasedres"
)

func main() {
	const (
		lambda    = 2e-3 // relevance horizon ~500 points
		capacity  = 500
		shortH    = 300
		longH     = 4000
		threshold = 5.0
	)

	sampler, err := biasedres.NewVariable(lambda, capacity, 1)
	if err != nil {
		log.Fatal(err)
	}
	detector, err := biasedres.NewDriftDetector(sampler, shortH, longH, 2, threshold)
	if err != nil {
		log.Fatal(err)
	}

	// Mean jumps by +2 per dimension at points 20k, 40k and 60k.
	gen, err := biasedres.NewClusterStream(biasedres.ClusterConfig{
		Dim: 2, K: 1, Radius: 0.5, Drift: 0, EpochLen: 1000, Total: 80000, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("watching a 2-dim stream, short horizon %d vs long horizon %d, threshold %.0fσ\n\n", shortH, longH, threshold)
	fmt.Printf("%-10s %-10s %-12s %-12s %-8s\n", "points", "max z", "short mean", "long mean", "drift?")

	jumps := map[uint64]bool{20000: true, 40000: true, 60000: true}
	offset := 0.0
	inDrift := false
	fires := 0
	biasedres.Drive(gen, func(p biasedres.Point) bool {
		if jumps[p.Index] {
			offset += 2
		}
		q := p
		q.Values = []float64{p.Values[0] + offset, p.Values[1] + offset}
		sampler.Add(q)
		// Check densely: the drift signal is a transient — it lives
		// while the short horizon has crossed the jump and the long
		// horizon still remembers the old regime.
		if p.Index%250 == 0 && p.Index >= longH {
			rep, err := detector.Check()
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case rep.Drift && !inDrift:
				inDrift = true
				fires++
				fmt.Printf("%-10d %-10.2f %-12.3f %-12.3f %-8s\n",
					p.Index, rep.MaxZ, rep.ShortMean[rep.MaxDim], rep.LongMean[rep.MaxDim], "DRIFT")
			case !rep.Drift && inDrift:
				inDrift = false
				fmt.Printf("%-10d %-10.2f %-12.3f %-12.3f %-8s\n",
					p.Index, rep.MaxZ, rep.ShortMean[rep.MaxDim], rep.LongMean[rep.MaxDim], "cleared")
			case p.Index%10000 == 0:
				fmt.Printf("%-10d %-10.2f %-12.3f %-12.3f %-8s\n",
					p.Index, rep.MaxZ, rep.ShortMean[rep.MaxDim], rep.LongMean[rep.MaxDim], "")
			}
		}
		return true
	})
	fmt.Printf("\n%d drift episodes detected for 3 true jumps (20k/40k/60k); the signal\n", fires)
	fmt.Println("clears by itself as the biased reservoir forgets the old regime —")
	fmt.Println("no sliding-window bookkeeping needed.")
}
