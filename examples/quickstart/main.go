// Quickstart: maintain a biased reservoir over an evolving stream and see
// why bias matters.
//
// We stream 200,000 points whose distribution shifts over time, keep two
// same-sized samples — one exponentially biased (this library's
// contribution) and one classical unbiased reservoir — and then ask both a
// simple question about the recent past: "what is the average value of the
// last 2,000 points?".
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"biasedres"
)

func main() {
	const (
		total    = 200000
		lambda   = 1e-3 // points keep ~1/λ = 1000 arrivals of relevance
		capacity = 500  // true space budget (≤ 1/λ)
		horizon  = 2000
	)

	// A variable reservoir fills within ~capacity points and then stays
	// full (Theorem 3.3); it is the constructor to reach for by default.
	biased, err := biasedres.NewVariable(lambda, capacity, 1)
	if err != nil {
		log.Fatal(err)
	}
	unbiased, err := biasedres.NewUnbiased(capacity, 2)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := biasedres.NewTruth(horizon)
	if err != nil {
		log.Fatal(err)
	}

	// An evolving stream: the mean of every dimension shifts by +1 every
	// 20,000 points, so old points stop representing the present.
	gen, err := biasedres.NewClusterStream(biasedres.ClusterConfig{
		Dim: 4, K: 2, Radius: 0.3, Drift: 0.2, EpochLen: 5000, Total: total, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	biasedres.Drive(gen, func(p biasedres.Point) bool {
		truth.Observe(p)
		biased.Add(p)
		unbiased.Add(p)
		return true
	})

	fmt.Printf("stream: %d points  |  both reservoirs hold <= %d points\n\n", total, capacity)
	fmt.Printf("biased reservoir:   %d points (fill %.0f%%)\n", biased.Len(), 100*float64(biased.Len())/capacity)
	fmt.Printf("unbiased reservoir: %d points (fill %.0f%%)\n\n", unbiased.Len(), 100*float64(unbiased.Len())/capacity)

	exact, err := truth.Average(horizon, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: average of the last %d points, per dimension\n", horizon)
	fmt.Printf("  exact:    %s\n", fmtVec(exact))

	report := func(name string, s biasedres.Sampler) {
		est, err := biasedres.HorizonAverage(s, horizon, 4)
		if err != nil {
			fmt.Printf("  %-9s NULL RESULT (%v)\n", name+":", err)
			return
		}
		fmt.Printf("  %-9s %s  (mean abs error %.4f)\n", name+":", fmtVec(est), mae(est, exact))
	}
	report("biased", biased)
	report("unbiased", unbiased)

	// Why: how much of each sample is actually relevant to the horizon?
	t := biased.Processed()
	rel := func(s biasedres.Sampler) int {
		n := 0
		for _, p := range s.Points() {
			if t-p.Index < horizon {
				n++
			}
		}
		return n
	}
	fmt.Printf("\nrelevant sample points (age < %d): biased %d, unbiased %d\n",
		horizon, rel(biased), rel(unbiased))
	fmt.Println("\nThe unbiased sample is uniform over all 200k points, so only ~1% of it")
	fmt.Println("lands in the recent horizon; the biased sample concentrates there by design.")
}

func fmtVec(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + "]"
}

func mae(a, b []float64) float64 {
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}
