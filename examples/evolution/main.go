// Evolution analysis of reservoir contents (Section 5.3 / Figure 9 of the
// paper).
//
// As a stream's clusters drift apart, a biased reservoir's contents track
// the drift — its classes stay sharply separated — while an unbiased
// reservoir accumulates the whole history and its classes smear together.
// This example renders ASCII scatter plots of both reservoirs at three
// checkpoints and reports the class-mixing index (fraction of reservoir
// points whose nearest neighbour belongs to a different class).
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"

	"biasedres"
)

func main() {
	const (
		total    = 120000
		capacity = 300
		lambda   = 1.0 / 3000 // p_in = 0.1
	)

	gen, err := biasedres.NewClusterStream(biasedres.ClusterConfig{
		Dim: 2, K: 4, Radius: 0.15, Drift: 0.04, EpochLen: 500, Total: total, Seed: 33,
	})
	if err != nil {
		log.Fatal(err)
	}
	biased, err := biasedres.NewVariable(lambda, capacity, 1)
	if err != nil {
		log.Fatal(err)
	}
	unbiased, err := biasedres.NewUnbiased(capacity, 2)
	if err != nil {
		log.Fatal(err)
	}

	checkpoints := map[uint64]bool{total / 3: true, 2 * total / 3: true, total: true}
	biasedres.Drive(gen, func(p biasedres.Point) bool {
		biased.Add(p)
		unbiased.Add(p)
		if checkpoints[p.Index] {
			show("BIASED", biased, p.Index)
			show("UNBIASED", unbiased, p.Index)
		}
		return true
	})
	fmt.Println("Marker key: o x + ^ = clusters 0..3. Lower mixing = sharper classes.")
}

func show(name string, s biasedres.Sampler, t uint64) {
	pts := s.Points()
	mix, err := biasedres.MixingIndex(pts)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := biasedres.ProjectReservoir(pts, t, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	plot, err := biasedres.RenderScatter(snap, 64, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s reservoir, class-mixing index %.3f ---\n%s\n", name, mix, plot)
}
