// Cluster monitoring over reservoir samples — the paper's "black-box
// mining over the sample" argument made concrete.
//
// k-means needs multiple passes and parameter tuning (k, restarts), which a
// one-pass stream cannot offer. Running it over a reservoir sample gives
// both back. This example monitors an evolving stream by re-clustering the
// reservoir at checkpoints, and compares how well the clusters recovered
// from a biased versus an unbiased sample describe the stream's *current*
// state (cluster purity against the generator's true labels, and distance
// of the recovered centroids from the current true centers).
//
//	go run ./examples/clustermonitor
package main

import (
	"fmt"
	"log"
	"math"

	"biasedres"
)

func main() {
	const (
		total    = 150000
		capacity = 400
		lambda   = 2.5e-4 // p_in = 0.1
		k        = 4
	)

	gen, err := biasedres.NewClusterStream(biasedres.ClusterConfig{
		Dim: 6, K: k, Radius: 0.25, Drift: 0.05, EpochLen: 500, Total: total, Seed: 41,
	})
	if err != nil {
		log.Fatal(err)
	}
	biased, err := biasedres.NewVariable(lambda, capacity, 1)
	if err != nil {
		log.Fatal(err)
	}
	unbiased, err := biasedres.NewUnbiased(capacity, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("k-means(k=%d, 4 restarts) over %d-point reservoirs, every 30k points\n\n", k, capacity)
	fmt.Printf("%-10s %-22s %-22s\n", "", "biased reservoir", "unbiased reservoir")
	fmt.Printf("%-10s %-10s %-11s %-10s %-11s\n", "points", "purity", "ctr-dist", "purity", "ctr-dist")

	checkpoint := 30000
	biasedres.Drive(gen, func(p biasedres.Point) bool {
		biased.Add(p)
		unbiased.Add(p)
		if int(p.Index)%checkpoint == 0 {
			truth := gen.Centers() // current true cluster centers
			pb, db := evalClusters(biased.Points(), k, truth, p.Index)
			pu, du := evalClusters(unbiased.Points(), k, truth, p.Index+1)
			fmt.Printf("%-10d %-10.3f %-11.3f %-10.3f %-11.3f\n", p.Index, pb, db, pu, du)
		}
		return true
	})

	fmt.Println("\npurity:   fraction of sampled points matching their cluster's majority label")
	fmt.Println("ctr-dist: mean distance from each recovered centroid to the nearest CURRENT true center")
	fmt.Println("\nThe biased sample yields clusters of the stream as it is now; the unbiased")
	fmt.Println("sample mixes in the drifted past, blurring both purity and centroid accuracy.")
}

func evalClusters(pts []biasedres.Point, k int, truth [][]float64, seed uint64) (purity, centerDist float64) {
	res, err := biasedres.KMeans(pts, biasedres.KMeansConfig{K: k, Restarts: 4}, seed)
	if err != nil {
		log.Fatal(err)
	}
	purity, err = biasedres.ClusterPurity(pts, res.Assign, k)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, c := range res.Centers {
		best := math.Inf(1)
		for _, tc := range truth {
			var d float64
			for i := range c {
				diff := c[i] - tc[i]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return purity, sum / float64(len(res.Centers))
}
