// Query estimation over recent horizons — the paper's motivating workload.
//
// A monitoring system answers the same dashboard queries again and again as
// the stream grows: "class mix over the last hour", "fraction of traffic in
// a value range", "average measurements". This example runs those queries
// from a biased and an unbiased reservoir of identical size against exact
// ground truth, sweeping the horizon, on the bursty network-intrusion
// workload.
//
//	go run ./examples/queryestimation
package main

import (
	"fmt"
	"log"
	"math"

	"biasedres"
)

func main() {
	const (
		total    = 150000
		capacity = 1000
		lambda   = 1e-4 // p_in = capacity·λ = 0.1
		maxH     = 16000
	)

	gen, err := biasedres.NewIntrusionStream(biasedres.IntrusionConfig{Total: total, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	biased, err := biasedres.NewVariable(lambda, capacity, 1)
	if err != nil {
		log.Fatal(err)
	}
	unbiased, err := biasedres.NewUnbiased(capacity, 2)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := biasedres.NewTruth(maxH)
	if err != nil {
		log.Fatal(err)
	}
	biasedres.Drive(gen, func(p biasedres.Point) bool {
		truth.Observe(p)
		biased.Add(p)
		unbiased.Add(p)
		return true
	})

	rect, err := biasedres.NewRect([]int{0, 1}, []float64{-1, -1}, []float64{1, 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stream: %d intrusion points; reservoirs: %d points each (λ=%.0e)\n\n", total, capacity, lambda)
	fmt.Println("CLASS-DISTRIBUTION ERROR (eq. 21) and RANGE-SELECTIVITY ERROR by horizon")
	fmt.Printf("%-10s %-12s %-12s %-3s %-12s %-12s\n", "horizon", "class:biased", "class:unbias", " | ", "range:biased", "range:unbias")
	for _, h := range []uint64{1000, 2000, 4000, 8000, 16000} {
		cb := classErr(biased, truth, h)
		cu := classErr(unbiased, truth, h)
		rb := rangeErr(biased, truth, h, rect)
		ru := rangeErr(unbiased, truth, h, rect)
		fmt.Printf("%-10d %-12.5f %-12.5f %-3s %-12.5f %-12.5f\n", h, cb, cu, " | ", rb, ru)
	}

	// Uncertainty: the estimator can report its own variance (Lemma 4.1).
	q := biasedres.CountQuery(2000)
	est, v := biasedres.EstimateWithVariance(biased, q)
	fmt.Printf("\ncount over last 2000: estimate %.0f ± %.0f (true 2000)\n", est, math.Sqrt(v))
	fmt.Println("\nAt small horizons the unbiased reservoir has almost no relevant points,")
	fmt.Println("so its estimates degrade or go null; the biased reservoir stays accurate.")
}

func classErr(s biasedres.Sampler, truth *biasedres.Truth, h uint64) float64 {
	exact, err := truth.ClassDistribution(h)
	if err != nil {
		log.Fatal(err)
	}
	est, err := biasedres.ClassDistribution(s, h)
	if err != nil {
		est = map[int]float64{} // null result
	}
	classes := map[int]struct{}{}
	for k := range exact {
		classes[k] = struct{}{}
	}
	for k := range est {
		classes[k] = struct{}{}
	}
	var sum float64
	for k := range classes {
		sum += math.Abs(exact[k] - est[k])
	}
	return sum / float64(len(classes))
}

func rangeErr(s biasedres.Sampler, truth *biasedres.Truth, h uint64, rect biasedres.Rect) float64 {
	exact, err := truth.RangeSelectivity(h, rect)
	if err != nil {
		log.Fatal(err)
	}
	est, err := biasedres.RangeSelectivity(s, h, rect)
	if err != nil {
		est = 0
	}
	return math.Abs(est - exact)
}
