// Stream classification with a sampled training set (Section 5.3 of the
// paper).
//
// A nearest-neighbour classifier cannot compare against every point in an
// unbounded stream, so it trains on a reservoir sample. This example runs
// the paper's test-then-train protocol on an evolving stream of drifting
// clusters and prints windowed accuracy for a biased versus an unbiased
// reservoir of the same size: as the stream evolves, the unbiased training
// set fills with stale points while the biased one tracks the present.
//
//	go run ./examples/classification
package main

import (
	"fmt"
	"log"

	"biasedres"
)

func main() {
	const (
		total    = 120000
		capacity = 400
		lambda   = 2.5e-4 // p_in = 0.1
		window   = 10000
	)

	mkStream := func() biasedres.Stream {
		g, err := biasedres.NewClusterStream(biasedres.ClusterConfig{
			Dim: 10, K: 4, Radius: 0.35, Drift: 0.05, EpochLen: 500, Total: total, Seed: 21,
		})
		if err != nil {
			log.Fatal(err)
		}
		return g
	}

	biased, err := biasedres.NewVariable(lambda, capacity, 1)
	if err != nil {
		log.Fatal(err)
	}
	unbiased, err := biasedres.NewUnbiased(capacity, 2)
	if err != nil {
		log.Fatal(err)
	}
	prB, err := biasedres.NewPrequential(1, biased, 1000, window)
	if err != nil {
		log.Fatal(err)
	}
	prU, err := biasedres.NewPrequential(1, unbiased, 1000, window)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("1-NN over a %d-point reservoir, evolving 4-cluster stream, %d points\n\n", capacity, total)
	fmt.Printf("%-12s %-10s %-10s\n", "points", "biased", "unbiased")

	sB, sU := mkStream(), mkStream()
	for {
		pB, okB := sB.Next()
		pU, okU := sU.Next()
		if !okB || !okU {
			break
		}
		prB.Step(pB)
		prU.Step(pU)
		accB, okB2 := prB.WindowAccuracy()
		accU, okU2 := prU.WindowAccuracy()
		if okB2 && okU2 {
			fmt.Printf("%-12d %-10.4f %-10.4f\n", prB.Seen(), accB, accU)
		}
	}
	aB, err := prB.Accuracy()
	if err != nil {
		log.Fatal(err)
	}
	aU, err := prU.Accuracy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncumulative accuracy: biased %.4f, unbiased %.4f\n", aB, aU)
	fmt.Println("\nThe same black-box classifier, the same memory budget — the difference")
	fmt.Println("is only in which sample of the stream each reservoir chooses to keep.")
}
