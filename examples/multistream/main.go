// Sampling thousands of streams under one memory budget — the deployment
// scenario Section 3 of the paper motivates its space-constrained
// algorithms with.
//
// A sensor fleet produces many independent streams; the collector can
// afford only a small global sample budget. The Manager gives each stream
// a variable biased reservoir within its share, so every per-stream sample
// fills fast, stays full, and favours recent behaviour.
//
//	go run ./examples/multistream
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"biasedres"
)

func main() {
	const (
		streams   = 200
		perStream = 5000
		budget    = 4000 // 20 sample slots per stream
		lambda    = 1e-3 // each point stays relevant for ~1000 arrivals
	)

	mgr, err := biasedres.NewManager(budget, lambda, 1)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, streams)
	for i := range names {
		names[i] = fmt.Sprintf("sensor-%03d", i)
	}
	if err := mgr.RegisterEven(names); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d streams share a %d-slot budget: %d slots each, %d unallocated\n\n",
		streams, budget, budget/streams, mgr.Remaining())

	// Each stream is fed concurrently by its own goroutine, as a real
	// collector would.
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			gen, err := biasedres.NewClusterStream(biasedres.ClusterConfig{
				Dim: 3, K: 2, Radius: 0.2, Drift: 0.1, EpochLen: 500,
				Total: perStream, Seed: uint64(1000 + i),
			})
			if err != nil {
				log.Fatal(err)
			}
			biasedres.Drive(gen, func(p biasedres.Point) bool {
				if err := mgr.Add(name, p); err != nil {
					log.Fatal(err)
				}
				return true
			})
		}(i, name)
	}
	wg.Wait()

	// Every reservoir is full and biased toward each stream's recent past.
	stats := mgr.StreamStats()
	full, totalLen := 0, 0
	for _, s := range stats {
		totalLen += s.Len
		if s.Len >= s.Share-1 {
			full++
		}
	}
	fmt.Printf("after %d points per stream:\n", perStream)
	fmt.Printf("  reservoirs essentially full: %d / %d\n", full, len(stats))
	fmt.Printf("  total sampled points: %d (budget %d)\n\n", totalLen, budget)

	for _, s := range stats[:3] {
		sample, err := mgr.Sample(s.Name)
		if err != nil {
			log.Fatal(err)
		}
		var meanAge float64
		for _, p := range sample {
			meanAge += float64(s.Processed - p.Index)
		}
		meanAge /= float64(len(sample))
		fmt.Printf("  %s: %d/%d points, p_in=%.3f, mean sample age %.0f of %d\n",
			s.Name, s.Len, s.Share, s.PIn, meanAge, s.Processed)
	}
	fmt.Println("\nMean sample age ~1/λ·(reservoir share/requirement): recent history dominates,")
	fmt.Println("yet no stream ever exceeds its slot share of the global budget.")

	// Checkpoint the whole fleet and restore it — every stream resumes
	// with its exact sample.
	var ckpt bytes.Buffer
	if err := mgr.SaveTo(&ckpt); err != nil {
		log.Fatal(err)
	}
	size := ckpt.Len() // reading the buffer below drains it
	restored, err := biasedres.LoadManager(&ckpt, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfleet checkpoint: %d bytes for %d streams; restored %d streams, %d slots in use\n",
		size, streams, restored.Len(), restored.Used())
}
