// The sampling library as a network service.
//
// This example runs the reservoird HTTP service in-process on a loopback
// port, then drives it through the typed Go client exactly as a remote
// collector would: create a stream, push batches of evolving points, ask
// dashboard queries, take a checkpoint, keep pushing, and roll back.
//
//	go run ./examples/httpservice
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"biasedres/internal/client"
	"biasedres/internal/server"
	"biasedres/internal/stream"
)

func main() {
	// Serve on an ephemeral loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(1), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("reservoird serving at %s\n\n", base)

	c, err := client.New(base)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.CreateStream("sensor", client.StreamConfig{
		Policy: "variable", Lambda: 1e-3, Capacity: 500,
	}); err != nil {
		log.Fatal(err)
	}

	// Push an evolving 4-cluster stream in batches of 1000.
	gen, err := stream.NewClusterGenerator(stream.ClusterConfig{
		Dim: 3, K: 4, Radius: 0.2, Drift: 0.05, EpochLen: 500, Total: 20000, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	var batch []client.Point
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if _, err := c.Push("sensor", batch); err != nil {
			log.Fatal(err)
		}
		batch = batch[:0]
	}
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		label := p.Label
		batch = append(batch, client.Point{Values: p.Values, Label: &label})
		if len(batch) == 1000 {
			flush()
		}
	}
	flush()

	st, err := c.Stats("sensor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server state: %d points processed, reservoir %d/%d (%.0f%% full)\n",
		st.Processed, st.Size, st.Capacity, 100*st.Fill)

	cnt, sigma2, err := c.Count("sensor", 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count over last 2000:  %.0f (variance %.0f)\n", cnt, sigma2)

	avg, err := c.Average("sensor", 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average over last 2000: %v\n", fmtVec(avg))

	dist, err := c.ClassDistribution("sensor", 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("class mix over last 2000: %d classes, each ~0.25\n", len(dist))

	med, err := c.Quantile("sensor", 2000, 0, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median of dim 0:        %.3f\n\n", med)

	// Checkpoint, mutate, roll back.
	blob, err := c.Snapshot("sensor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint taken: %d bytes\n", len(blob))
	extra := make([]client.Point, 500)
	for i := range extra {
		extra[i] = client.Point{Values: []float64{9, 9, 9}}
	}
	if _, err := c.Push("sensor", extra); err != nil {
		log.Fatal(err)
	}
	if err := c.Restore("sensor", blob); err != nil {
		log.Fatal(err)
	}
	st, err = c.Stats("sensor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after push of 500 junk points and restore: processed = %d (rolled back)\n", st.Processed)

	// The service exposes its runtime state in Prometheus text format.
	expo, err := c.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\na few lines of GET /metrics:")
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "biasedres_stream_") && strings.Contains(line, `{stream="sensor"}`) {
			fmt.Println("  " + line)
		}
	}
}

func fmtVec(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + "]"
}
