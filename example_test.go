package biasedres_test

import (
	"fmt"

	"biasedres"
)

// Maintain an exponentially biased sample of a stream and answer a
// recent-horizon query from it.
func ExampleNewVariable() {
	// Bias rate λ = 1e-3: relevance decays by 1/e every 1000 arrivals.
	// Budget: 100 points.
	sampler, err := biasedres.NewVariable(1e-3, 100, 42)
	if err != nil {
		panic(err)
	}
	for i := uint64(1); i <= 50000; i++ {
		sampler.Add(biasedres.Point{
			Index:  i,
			Values: []float64{float64(i % 10)},
			Weight: 1,
		})
	}
	fmt.Printf("reservoir holds %d/%d points after %d arrivals\n",
		sampler.Len(), sampler.Capacity(), sampler.Processed())

	avg, err := biasedres.HorizonAverage(sampler, 1000, 1)
	if err != nil {
		panic(err)
	}
	// True average of i%10 is 4.5; the estimate is unbiased.
	fmt.Printf("average over last 1000 arrivals ~ %.0f (true 4.5)\n", avg[0])
	// Output:
	// reservoir holds 100/100 points after 50000 arrivals
	// average over last 1000 arrivals ~ 4 (true 4.5)
}

// The maximum reservoir requirement (Theorem 2.1/Corollary 2.1): a biased
// sample never needs more than ≈1/λ points, no matter how long the stream.
func ExampleExpMaxRequirement() {
	for _, t := range []uint64{1000, 1000000, 1000000000} {
		fmt.Printf("R(t=%d) <= %.1f\n", t, biasedres.ExpMaxRequirement(1e-3, t))
	}
	// Output:
	// R(t=1000) <= 632.4
	// R(t=1000000) <= 1000.5
	// R(t=1000000000) <= 1000.5
}

// Every query estimate is the Horvitz-Thompson form of Equation 8: sampled
// values are reweighted by their inclusion probabilities, which makes the
// estimate unbiased even though the sample itself is biased.
func ExampleEstimate() {
	sampler, err := biasedres.NewBiased(0.01, 7) // capacity 100
	if err != nil {
		panic(err)
	}
	for i := uint64(1); i <= 10000; i++ {
		sampler.Add(biasedres.Point{Index: i, Values: []float64{1}, Weight: 1})
	}
	est, variance := biasedres.EstimateWithVariance(sampler, biasedres.CountQuery(500))
	fmt.Printf("count over last 500: estimate within ±3σ of 500: %v (σ=%.0f)\n",
		est > 500-3*sqrt(variance) && est < 500+3*sqrt(variance), sqrt(variance))
	// Output:
	// count over last 500: estimate within ±3σ of 500: true (σ=186)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// Snapshot a reservoir mid-stream and restore it — the resumed sampler
// continues exactly like an uninterrupted one.
func ExampleVariableReservoir_MarshalBinary() {
	s, _ := biasedres.NewVariable(1e-2, 50, 3)
	for i := uint64(1); i <= 1000; i++ {
		s.Add(biasedres.Point{Index: i, Weight: 1})
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		panic(err)
	}
	restored, _ := biasedres.NewVariable(1e-2, 50, 999) // state will be overwritten
	if err := restored.UnmarshalBinary(blob); err != nil {
		panic(err)
	}
	fmt.Printf("restored: %d points at t=%d\n", restored.Len(), restored.Processed())
	// Output:
	// restored: 50 points at t=1000
}
